#include "core/wfa_kernel.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "align/wfa.hpp"
#include "core/dpu_cost.hpp"
#include "core/mram_layout.hpp"
#include "dna/packed_sequence.hpp"
#include "util/check.hpp"

namespace pimnw::core {
namespace {

using align::Score;
using upmem::DpuContext;

/// Furthest-reaching pattern offset per diagonal — the exact representation
/// of align/wfa.cpp, including the sentinel (chosen so +1 cannot wrap).
using Offset = std::int32_t;
constexpr Offset kNone = std::numeric_limits<Offset>::min() / 2;

std::uint64_t align8(std::uint64_t v) { return (v + 7) & ~std::uint64_t{7}; }

/// Wavefront row slots within a pair's MRAM scratch: M, I, D in that order.
constexpr int kRowM = 0;
constexpr int kRowI = 1;
constexpr int kRowD = 2;

/// One fully-resident packed sequence buffer per pool side.
constexpr std::uint64_t kWfaSeqBytes = kWfaMaxSeqBases / 4;  // 2048
static_assert(kWfaSeqBytes <= upmem::kDmaMaxBytes);
/// Wavefront cells computed per WRAM chunk.
constexpr std::int32_t kChunk = 128;
/// Source window buffer: diagonals [c0-1, c1+1] of one source row.
constexpr std::uint32_t kSrcCells = static_cast<std::uint32_t>(kChunk) + 2;
/// 8-byte-aligned MRAM read staging for one source window.
constexpr std::uint32_t kStageCells = static_cast<std::uint32_t>(kChunk) + 8;
/// Output chunk buffer: kChunk cells + one pad cell for align8 writes.
constexpr std::uint32_t kOutCells = static_cast<std::uint32_t>(kChunk) + 2;
/// CIGAR runs staged before flushing to MRAM (same as the NW kernel).
constexpr std::uint32_t kRunChunk = 256;

/// Row/slot geometry shared by the planner (WfaKernel::pair_scratch_bytes)
/// and the program — they must agree byte for byte or a pair could overrun
/// the stride the layout reserved.
std::uint64_t wfa_row_bytes(std::uint64_t maxw) { return align8(maxw * 4); }

std::uint64_t wfa_slot_bytes(std::uint64_t maxw) {
  // Three rows (M, I, D), each an 8-byte {lo, hi} header plus the offsets.
  return 3 * (8 + wfa_row_bytes(maxw));
}

std::uint64_t wfa_max_width(std::uint64_t cap, std::uint64_t len_a,
                            std::uint64_t len_b) {
  // Bounds widen by at most one diagonal per side per step and are clamped
  // to [-n, m], so a wavefront at cost s <= cap spans at most
  // min(2s+1, m+n+1) diagonals.
  return std::min(2 * cap + 1, len_a + len_b + 1);
}

std::uint64_t wfa_cost_cap_impl(std::uint64_t len_a, std::uint64_t len_b,
                                const align::Scoring& scoring,
                                std::uint64_t max_cost) {
  const std::uint64_t worst = wfa_worst_cost(len_a, len_b, scoring);
  return max_cost != 0 ? std::min(max_cost, worst) : worst;
}

/// The per-pool WRAM working set, independent of pair lengths (streaming
/// keeps it constant); pair_admissible checks P of these fit the scratchpad.
std::uint64_t wfa_pool_wram_bytes() {
  return 2 * kWfaSeqBytes                       // resident packed sequences
         + 4 * std::uint64_t{kSrcCells} * 4     // four source windows
         + std::uint64_t{kStageCells} * 4       // aligned read staging
         + 3 * std::uint64_t{kOutCells} * 4     // three output chunks
         + 8 + 8                                // header + probe staging
         + std::uint64_t{kRunChunk} * 4;        // staged CIGAR runs
}

void dma_read_chunked(DpuContext& ctx, upmem::PoolCost& pool,
                      std::uint64_t mram_addr, std::uint64_t wram_addr,
                      std::uint64_t bytes) {
  while (bytes > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(bytes,
                                                        upmem::kDmaMaxBytes);
    ctx.mram_read(mram_addr, wram_addr, chunk);
    pool.dma(chunk);
    mram_addr += chunk;
    wram_addr += chunk;
    bytes -= chunk;
  }
}

/// A packed sequence held fully WRAM-resident for the pair.
struct ResidentSeq {
  DpuContext* ctx = nullptr;
  std::uint64_t wram_addr = 0;
  std::int64_t length = 0;

  void load(DpuContext& c, upmem::PoolCost& pool, std::uint64_t data_off,
            std::int64_t len) {
    ctx = &c;
    length = len;
    const std::uint64_t bytes = align8(dna::PackedSequence::bytes_for(
        static_cast<std::size_t>(len)));
    pool.set_phase(upmem::Phase::kSetup);
    dma_read_chunked(c, pool, data_off, wram_addr, bytes);
  }

  std::uint8_t base(std::int64_t index) const {
    const std::uint8_t byte =
        *ctx->wram.raw(wram_addr + static_cast<std::uint64_t>(index / 4), 1);
    return static_cast<std::uint8_t>((byte >> (2 * (index % 4))) & 0x3);
  }
};

/// Everything the kernel needs about the batch, parsed from MRAM. Identical
/// to the NW kernel's reader: the container format is kernel-agnostic.
struct Batch {
  BatchHeader header;
  align::Scoring scoring;

  SeqEntry seq_entry(DpuContext& ctx, upmem::PoolCost& pool,
                     std::uint32_t index) const {
    SeqEntry entry;
    const std::uint64_t addr = header.seq_table_off + index * sizeof(SeqEntry);
    pool.set_phase(upmem::Phase::kSetup);
    ctx.mram_read(addr, scratch_, sizeof(SeqEntry));
    pool.dma(sizeof(SeqEntry));
    std::memcpy(&entry, ctx.wram.raw(scratch_, sizeof(SeqEntry)),
                sizeof(SeqEntry));
    return entry;
  }

  PairEntry pair_entry(DpuContext& ctx, upmem::PoolCost& pool,
                       std::uint32_t index) const {
    pool.set_phase(upmem::Phase::kSetup);
    if ((header.flags & kFlagSession) != 0) {
      SessionPairEntry compact;
      const std::uint64_t addr =
          header.pair_table_off + index * sizeof(SessionPairEntry);
      ctx.mram_read(addr, scratch_, sizeof(SessionPairEntry));
      pool.dma(sizeof(SessionPairEntry));
      std::memcpy(&compact, ctx.wram.raw(scratch_, sizeof(SessionPairEntry)),
                  sizeof(SessionPairEntry));
      PairEntry entry{};
      entry.seq_a = compact.seq_a;
      entry.seq_b = compact.seq_b;
      entry.global_id = index;
      return entry;
    }
    PairEntry entry;
    const std::uint64_t addr =
        header.pair_table_off + index * sizeof(PairEntry);
    ctx.mram_read(addr, scratch_, sizeof(PairEntry));
    pool.dma(sizeof(PairEntry));
    std::memcpy(&entry, ctx.wram.raw(scratch_, sizeof(PairEntry)),
                sizeof(PairEntry));
    return entry;
  }

  std::uint64_t scratch_ = 0;  // small WRAM staging area for table entries
};

/// Per-pool WRAM working set, allocated once per launch and reused across
/// the pairs the pool aligns.
struct WfaPoolBuffers {
  ResidentSeq seq_a;
  ResidentSeq seq_b;
  std::uint64_t src_addr[4] = {};
  std::span<Offset> src[4];
  std::uint64_t stage_addr = 0;
  std::span<Offset> stage;
  std::uint64_t out_addr[3] = {};
  std::span<Offset> out[3];
  std::uint64_t head_addr = 0;
  std::span<std::int32_t> head;
  std::uint64_t probe_addr = 0;
  std::span<Offset> probe;
  std::uint64_t run_buf_addr = 0;
  std::span<std::uint32_t> run_buf;

  void allocate(DpuContext& ctx) {
    seq_a.wram_addr = ctx.wram.alloc(kWfaSeqBytes);
    seq_b.wram_addr = ctx.wram.alloc(kWfaSeqBytes);
    for (int r = 0; r < 4; ++r) {
      src_addr[r] = ctx.wram.alloc(std::uint64_t{kSrcCells} * 4);
      src[r] = ctx.wram.view<Offset>(src_addr[r], kSrcCells);
    }
    stage_addr = ctx.wram.alloc(std::uint64_t{kStageCells} * 4);
    stage = ctx.wram.view<Offset>(stage_addr, kStageCells);
    for (int r = 0; r < 3; ++r) {
      out_addr[r] = ctx.wram.alloc(std::uint64_t{kOutCells} * 4);
      out[r] = ctx.wram.view<Offset>(out_addr[r], kOutCells);
    }
    head_addr = ctx.wram.alloc(8);
    head = ctx.wram.view<std::int32_t>(head_addr, 2);
    probe_addr = ctx.wram.alloc(8);
    probe = ctx.wram.view<Offset>(probe_addr, 2);
    run_buf_addr = ctx.wram.alloc(std::uint64_t{kRunChunk} * 4);
    run_buf = ctx.wram.view<std::uint32_t>(run_buf_addr, kRunChunk);
  }
};

/// State of one WFA alignment in progress (per pool). The recurrence,
/// tie-breaking and backtrace are transcribed from align/wfa.cpp; only the
/// storage differs (MRAM slots + WRAM chunks instead of host vectors), and
/// every divergence-relevant value is bit-identical.
class WfaPairAligner {
 public:
  WfaPairAligner(DpuContext& ctx, upmem::PoolCost& pool,
                 WfaPoolBuffers& buffers, const Batch& batch,
                 const WfaKernelCost& cost, int tasklets, int pool_index,
                 std::uint64_t wfa_max_cost)
      : ctx_(ctx),
        pool_(pool),
        buf_(buffers),
        batch_(batch),
        cost_(cost),
        tasklets_(tasklets),
        pool_index_(pool_index),
        wfa_max_cost_(wfa_max_cost) {}

  void align(const PairEntry& pair, std::uint32_t pair_index);

 private:
  std::uint64_t pool_cycles_now() const {
    return pool_.critical_instr() *
               upmem::issue_interval(ctx_.cost.active_tasklets()) +
           pool_.critical_dma_cycles();
  }

  // --- MRAM slot addressing ---

  std::uint64_t slot_index(std::uint64_t s) const {
    return traceback_on_ ? s : s % depth_;
  }
  std::uint64_t row_base(std::uint64_t s, int which) const {
    return batch_.header.bt_scratch_off +
           static_cast<std::uint64_t>(pool_index_) *
               batch_.header.bt_scratch_stride +
           slot_index(s) * slot_bytes_ +
           static_cast<std::uint64_t>(which) * (8 + row_bytes_);
  }

  void write_header(std::uint64_t s, int which, std::int32_t lo,
                    std::int32_t hi) {
    pool_.set_phase(upmem::Phase::kBtDma);
    buf_.head[0] = lo;
    buf_.head[1] = hi;
    ctx_.mram_write(buf_.head_addr, row_base(s, which), 8);
    pool_.dma(8);
  }

  void read_header(std::uint64_t s, int which, std::int32_t* lo,
                   std::int32_t* hi, upmem::Phase phase) {
    pool_.set_phase(phase);
    ctx_.mram_read(row_base(s, which), buf_.head_addr, 8);
    pool_.dma(8);
    *lo = buf_.head[0];
    *hi = buf_.head[1];
  }

  /// Load diagonals [wlo, whi] of row (s, which) into `dest` (dest[0] holds
  /// diagonal wlo); out-of-bounds diagonals become kNone, exactly like the
  /// host Wavefront::at. The MRAM read is staged 8-byte aligned.
  void load_window(std::uint64_t s, int which, std::int32_t slo,
                   std::int32_t shi, std::int32_t wlo, std::int32_t whi,
                   std::span<Offset> dest) {
    std::fill(dest.begin(),
              dest.begin() + static_cast<std::size_t>(whi - wlo + 1), kNone);
    if (shi < slo) return;  // empty row (including s < back sources)
    const std::int32_t a0 = std::max(wlo, slo);
    const std::int32_t a1 = std::min(whi, shi);
    if (a1 < a0) return;
    const std::int32_t r0 = (a0 - slo) & ~1;  // even cell index -> 8-aligned
    const std::uint64_t cells = static_cast<std::uint64_t>(a1 - slo - r0 + 1);
    const std::uint64_t bytes = align8(cells * 4);
    pool_.set_phase(upmem::Phase::kBtDma);
    ctx_.mram_read(row_base(s, which) + 8 + static_cast<std::uint64_t>(r0) * 4,
                   buf_.stage_addr, bytes);
    pool_.dma(bytes);
    std::memcpy(dest.data() + (a0 - wlo), buf_.stage.data() + (a0 - slo - r0),
                static_cast<std::size_t>(a1 - a0 + 1) * sizeof(Offset));
  }

  /// Wavefront::at for the backtrace: one 8-byte header read plus (when the
  /// diagonal is in range) one 8-byte cell-pair read.
  Offset probe(std::uint64_t s, int which, std::int32_t k) {
    std::int32_t lo = 0;
    std::int32_t hi = -1;
    read_header(s, which, &lo, &hi, upmem::Phase::kTraceback);
    if (k < lo || k > hi) return kNone;
    const std::int32_t r = (k - lo) & ~1;
    ctx_.mram_read(row_base(s, which) + 8 + static_cast<std::uint64_t>(r) * 4,
                   buf_.probe_addr, 8);
    pool_.dma(8);
    return buf_.probe[static_cast<std::size_t>((k - lo) & 1)];
  }

  /// Greedy match extension along diagonal k from pattern offset i — the
  /// WRAM-resident-sequence version of the host's extend().
  Offset extend(std::int32_t k, Offset i) {
    std::int64_t ii = i;
    std::int64_t jj = ii - k;
    while (ii < m_ && jj < n_ && buf_.seq_a.base(ii) == buf_.seq_b.base(jj)) {
      ++ii;
      ++jj;
      ++step_ext_bases_;
    }
    return static_cast<Offset>(ii);
  }

  std::optional<std::uint64_t> forward();
  dna::Cigar backtrace(std::uint64_t cost);
  void write_result(std::uint32_t pair_index, const PairResult& result);
  void flush_runs(const PairEntry& pair, bool final_flush);
  void emit_run(const PairEntry& pair, dna::CigarOp op, std::uint32_t len);

  DpuContext& ctx_;
  upmem::PoolCost& pool_;
  WfaPoolBuffers& buf_;
  const Batch& batch_;
  const WfaKernelCost& cost_;
  int tasklets_;
  int pool_index_;
  std::uint64_t wfa_max_cost_;

  // Pair geometry, set by align().
  std::int64_t m_ = 0;
  std::int64_t n_ = 0;
  std::int32_t k_final_ = 0;
  bool traceback_on_ = false;
  std::uint64_t ux_ = 0;    // mismatch penalty x
  std::uint64_t uopen_ = 0;  // gap of length 1
  std::uint64_t uext_ = 0;   // each additional gap base
  std::uint64_t depth_ = 0;  // score-only slot ring size
  std::uint64_t cap_ = 0;    // per-pair cost budget (slots 0..cap_)
  std::uint64_t row_bytes_ = 0;
  std::uint64_t slot_bytes_ = 0;

  // Per-step work accumulator for the extend loop.
  std::uint64_t step_ext_bases_ = 0;

  // Staged CIGAR runs.
  std::uint32_t runs_staged_ = 0;
  std::uint64_t runs_flushed_ = 0;
  bool cigar_overflow_ = false;
};

std::optional<std::uint64_t> WfaPairAligner::forward() {
  // Cost 0: one M cell on diagonal 0, I and D empty — then the cost loop.
  {
    pool_.set_phase(upmem::Phase::kCompute);
    pool_.serial(cost_.step_master_instr);
    step_ext_bases_ = 0;
    const Offset off = extend(0, 0);
    pool_.balanced_step(
        cost_.cell_instr + cost_.extend_base_instr * step_ext_bases_,
        tasklets_);
    pool_.balanced_step(
        cost_.barrier_instr * static_cast<std::uint64_t>(tasklets_),
        tasklets_);
    write_header(0, kRowM, 0, 0);
    buf_.out[kRowM][0] = off;
    buf_.out[kRowM][1] = kNone;
    pool_.set_phase(upmem::Phase::kBtDma);
    ctx_.mram_write(buf_.out_addr[kRowM], row_base(0, kRowM) + 8, 8);
    pool_.dma(8);
    write_header(0, kRowI, 0, -1);
    write_header(0, kRowD, 0, -1);
    if (k_final_ == 0 && off >= m_) return 0;
  }

  for (std::uint64_t s = 1;; ++s) {
    if (wfa_max_cost_ != 0 && s > wfa_max_cost_) return std::nullopt;
    PIMNW_CHECK_MSG(s <= cap_, "WFA step " << s
                                           << " overran its planned slot "
                                              "budget "
                                           << cap_);

    // Source rows: M at s-x (mismatch), M at s-open (gap open), I and D at
    // s-ext (gap extension). Sources below cost 0 are empty.
    const std::uint64_t backs[4] = {ux_, uopen_, uext_, uext_};
    const int kinds[4] = {kRowM, kRowM, kRowI, kRowD};
    std::int32_t slo[4];
    std::int32_t shi[4];
    for (int r = 0; r < 4; ++r) {
      if (s < backs[r]) {
        slo[r] = 0;
        shi[r] = -1;
        continue;
      }
      read_header(s - backs[r], kinds[r], &slo[r], &shi[r],
                  upmem::Phase::kBtDma);
    }

    std::int32_t lo = std::numeric_limits<std::int32_t>::max();
    std::int32_t hi = std::numeric_limits<std::int32_t>::min();
    auto widen = [&](int r, std::int32_t dlo, std::int32_t dhi) {
      if (shi[r] < slo[r]) return;
      lo = std::min(lo, slo[r] + dlo);
      hi = std::max(hi, shi[r] + dhi);
    };
    widen(0, 0, 0);
    widen(1, -1, 1);
    widen(2, -1, -1);
    widen(3, 1, 1);

    pool_.set_phase(upmem::Phase::kCompute);
    pool_.serial(cost_.step_master_instr);

    if (hi < lo) {
      write_header(s, kRowM, 0, -1);
      write_header(s, kRowI, 0, -1);
      write_header(s, kRowD, 0, -1);
      continue;
    }
    lo = std::max(lo, static_cast<std::int32_t>(-n_));
    hi = std::min(hi, static_cast<std::int32_t>(m_));
    // The clamp can leave hi < lo; the host stores the clamped bounds on an
    // empty row and at() still answers kNone, so mirror that exactly.
    write_header(s, kRowM, lo, hi);
    write_header(s, kRowI, lo, hi);
    write_header(s, kRowD, lo, hi);

    std::uint64_t step_cells = 0;
    step_ext_bases_ = 0;
    bool found = false;
    for (std::int32_t c0 = lo; c0 <= hi && !found; c0 += kChunk) {
      const std::int32_t c1 = std::min(hi, c0 + kChunk - 1);
      for (int r = 0; r < 4; ++r) {
        load_window(s >= backs[r] ? s - backs[r] : 0, kinds[r], slo[r],
                    shi[r], c0 - 1, c1 + 1, buf_.src[r]);
      }
      const std::size_t span_cells = static_cast<std::size_t>(c1 - c0 + 1);
      for (int r = 0; r < 3; ++r) {
        std::fill(buf_.out[r].begin(), buf_.out[r].end(), kNone);
      }
      auto srcv = [&](int r, std::int32_t k) {
        return buf_.src[r][static_cast<std::size_t>(k - (c0 - 1))];
      };
      for (std::int32_t k = c0; k <= c1; ++k) {
        const Offset ins = std::max(srcv(1, k + 1), srcv(2, k + 1));
        const Offset del_src = std::max(srcv(1, k - 1), srcv(3, k - 1));
        const Offset del =
            del_src == kNone ? kNone : static_cast<Offset>(del_src + 1);
        const Offset mis_src = srcv(0, k);
        const Offset mis =
            mis_src == kNone ? kNone : static_cast<Offset>(mis_src + 1);
        buf_.out[kRowI][static_cast<std::size_t>(k - c0)] = ins;
        buf_.out[kRowD][static_cast<std::size_t>(k - c0)] = del;
        ++step_cells;
        Offset best = std::max({ins, del, mis});
        if (best == kNone) continue;  // M stays kNone
        const std::int64_t i = best;
        const std::int64_t j = i - k;
        if (i > m_ || j > n_ || j < 0) continue;
        best = extend(k, best);
        buf_.out[kRowM][static_cast<std::size_t>(k - c0)] = best;
        if (k == k_final_ && best >= m_) {
          found = true;
          break;
        }
      }
      // Stream the chunk out — on the early exit too: the cells past the
      // final diagonal are kNone, exactly the host's resize fill, and the
      // backtrace never reads beyond k_final on the final wavefront.
      const std::uint64_t bytes = align8(span_cells * 4);
      const std::uint64_t cell_off = static_cast<std::uint64_t>(c0 - lo) * 4;
      pool_.set_phase(upmem::Phase::kBtDma);
      for (int r = 0; r < 3; ++r) {
        ctx_.mram_write(buf_.out_addr[r], row_base(s, r) + 8 + cell_off,
                        bytes);
        pool_.dma(bytes);
      }
    }
    pool_.set_phase(upmem::Phase::kCompute);
    pool_.balanced_step(cost_.cell_instr * step_cells +
                            cost_.extend_base_instr * step_ext_bases_,
                        tasklets_);
    pool_.balanced_step(
        cost_.barrier_instr * static_cast<std::uint64_t>(tasklets_),
        tasklets_);
    if (found) return s;
  }
}

dna::Cigar WfaPairAligner::backtrace(std::uint64_t cost) {
  dna::Cigar cigar;  // built back-to-front, reversed at the end
  enum class State { kM, kI, kD };
  State state = State::kM;
  std::uint64_t s = cost;
  std::int32_t k = k_final_;
  Offset offset = static_cast<Offset>(m_);

  while (true) {
    if (state == State::kM) {
      const Offset mis_src = s >= ux_ ? probe(s - ux_, kRowM, k) : kNone;
      const Offset mis =
          mis_src == kNone ? kNone : static_cast<Offset>(mis_src + 1);
      const Offset ins = probe(s, kRowI, k);
      const Offset del = probe(s, kRowD, k);
      const Offset src = std::max({mis, ins, del});
      if (s == 0 || src == kNone) {
        PIMNW_CHECK_MSG(s == 0 && k == 0,
                        "WFA backtrace lost the path at cost " << s);
        cigar.push(dna::CigarOp::kMatch, static_cast<std::uint32_t>(offset));
        break;
      }
      cigar.push(dna::CigarOp::kMatch,
                 static_cast<std::uint32_t>(offset - src));
      if (src == mis) {
        cigar.push(dna::CigarOp::kMismatch);
        offset = static_cast<Offset>(src - 1);
        s -= ux_;
      } else if (src == ins) {
        state = State::kI;
        offset = src;
      } else {
        state = State::kD;
        offset = src;
      }
    } else if (state == State::kI) {
      cigar.push(dna::CigarOp::kDelete);
      const Offset open =
          s >= uopen_ ? probe(s - uopen_, kRowM, k + 1) : kNone;
      const Offset ext = s >= uext_ ? probe(s - uext_, kRowI, k + 1) : kNone;
      PIMNW_CHECK_MSG(open == offset || ext == offset,
                      "WFA backtrace lost an insertion run");
      ++k;
      if (open == offset) {
        state = State::kM;
        s -= uopen_;
      } else {
        s -= uext_;
      }
    } else {
      cigar.push(dna::CigarOp::kInsert);
      const Offset target = static_cast<Offset>(offset - 1);
      const Offset open =
          s >= uopen_ ? probe(s - uopen_, kRowM, k - 1) : kNone;
      const Offset ext = s >= uext_ ? probe(s - uext_, kRowD, k - 1) : kNone;
      PIMNW_CHECK_MSG(open == target || ext == target,
                      "WFA backtrace lost a deletion run");
      --k;
      offset = target;
      if (open == target) {
        state = State::kM;
        s -= uopen_;
      } else {
        s -= uext_;
      }
    }
  }
  cigar.reverse();
  return cigar;
}

void WfaPairAligner::align(const PairEntry& pair, std::uint32_t pair_index) {
  const std::uint64_t cycles_before = pool_cycles_now();
  const std::uint64_t dma_before = pool_.dma_bytes();
  pool_.set_phase(upmem::Phase::kSetup);
  pool_.serial(cost_.pair_setup_instr);

  const SeqEntry sa = batch_.seq_entry(ctx_, pool_, pair.seq_a);
  const SeqEntry sb = batch_.seq_entry(ctx_, pool_, pair.seq_b);
  m_ = sa.length;
  n_ = sb.length;
  k_final_ = static_cast<std::int32_t>(m_ - n_);
  traceback_on_ = (batch_.header.flags & kFlagTraceback) != 0;
  runs_staged_ = 0;
  runs_flushed_ = 0;
  cigar_overflow_ = false;

  auto stamp_cost = [&](PairResult& result) {
    const std::uint64_t cycles = pool_cycles_now() - cycles_before;
    result.pool_cycles_lo = static_cast<std::uint32_t>(cycles);
    result.pool_cycles_hi = static_cast<std::uint32_t>(cycles >> 32);
    result.dma_bytes =
        static_cast<std::uint32_t>(pool_.dma_bytes() - dma_before);
  };

  auto finish_with_cigar = [&](PairResult& result, const dna::Cigar& cigar) {
    // Runs are written back-to-front, matching the MRAM reversed-run
    // convention and the NW kernel's streaming emitter.
    const auto& items = cigar.items();
    for (auto it = items.rbegin(); it != items.rend(); ++it) {
      emit_run(pair, it->op, it->len);
    }
    flush_runs(pair, true);
    pool_.set_phase(upmem::Phase::kTraceback);
    pool_.serial(cost_.traceback_op_instr * cigar.columns());
    result.cigar_runs =
        cigar_overflow_ ? 0 : static_cast<std::uint32_t>(items.size());
    if (cigar_overflow_) result.status = kStatusCigarOverflow;
  };

  PairResult result{};

  // Either side empty: the closed-form single-gap alignment (the host
  // wrapper's trivial case) — no wavefront machinery touched.
  if (m_ == 0 || n_ == 0) {
    result.score = static_cast<Score>(
        -batch_.scoring.gap_cost(static_cast<std::uint64_t>(m_ + n_)));
    if (traceback_on_) {
      dna::Cigar cigar;
      if (m_ > 0) {
        cigar.push(dna::CigarOp::kInsert, static_cast<std::uint32_t>(m_));
      }
      if (n_ > 0) {
        cigar.push(dna::CigarOp::kDelete, static_cast<std::uint32_t>(n_));
      }
      finish_with_cigar(result, cigar);
    }
    stamp_cost(result);
    write_result(pair_index, result);
    return;
  }

  // Pair geometry from the batch scoring + the host-side cost cap; the slot
  // arithmetic is the planner's, so the stride the layout reserved always
  // covers it (checked, not assumed).
  const WfaPenalties pen = wfa_penalties(batch_.scoring);
  ux_ = static_cast<std::uint64_t>(pen.x);
  uopen_ = static_cast<std::uint64_t>(pen.open);
  uext_ = static_cast<std::uint64_t>(pen.ext);
  depth_ = pen.depth;
  cap_ = wfa_cost_cap_impl(static_cast<std::uint64_t>(m_),
                           static_cast<std::uint64_t>(n_), batch_.scoring,
                           wfa_max_cost_);
  const std::uint64_t maxw = wfa_max_width(
      cap_, static_cast<std::uint64_t>(m_), static_cast<std::uint64_t>(n_));
  row_bytes_ = wfa_row_bytes(maxw);
  slot_bytes_ = wfa_slot_bytes(maxw);
  const std::uint64_t nslots = traceback_on_ ? cap_ + 1 : depth_;
  PIMNW_CHECK_MSG(nslots * slot_bytes_ <= batch_.header.bt_scratch_stride,
                  "WFA slot area (" << nslots * slot_bytes_
                                    << " B) exceeds the planned scratch "
                                       "stride "
                                    << batch_.header.bt_scratch_stride);

  buf_.seq_a.load(ctx_, pool_, sa.data_off, m_);
  buf_.seq_b.load(ctx_, pool_, sb.data_off, n_);

  const std::optional<std::uint64_t> cost = forward();
  if (!cost) {
    // Cost bound exceeded — the exact condition under which the host
    // reference returns nullopt (kStatusUnreachable, like an NW band miss).
    result.status = kStatusUnreachable;
    result.score = 0;
    stamp_cost(result);
    write_result(pair_index, result);
    return;
  }

  const std::int64_t numerator =
      static_cast<std::int64_t>(batch_.scoring.match) * (m_ + n_) -
      static_cast<std::int64_t>(*cost);
  result.score = static_cast<Score>(numerator / 2);
  if (traceback_on_) {
    const dna::Cigar cigar = backtrace(*cost);
    finish_with_cigar(result, cigar);
  }
  stamp_cost(result);
  write_result(pair_index, result);
}

void WfaPairAligner::emit_run(const PairEntry& pair, dna::CigarOp op,
                              std::uint32_t len) {
  if (cigar_overflow_) return;
  if (runs_flushed_ + runs_staged_ >= pair.cigar_cap) {
    cigar_overflow_ = true;
    return;
  }
  buf_.run_buf[runs_staged_++] = encode_cigar_run(op, len);
  if (runs_staged_ == kRunChunk) flush_runs(pair, false);
}

void WfaPairAligner::flush_runs(const PairEntry& pair, bool final_flush) {
  if (cigar_overflow_ || runs_staged_ == 0) return;
  std::uint32_t flush_count = runs_staged_;
  if (!final_flush) {
    flush_count &= ~1u;  // keep writes 8-byte aligned mid-stream
    if (flush_count == 0) return;
  }
  const std::uint64_t bytes = align8(flush_count * 4);
  pool_.set_phase(upmem::Phase::kTraceback);
  ctx_.mram_write(buf_.run_buf_addr, pair.cigar_off + runs_flushed_ * 4,
                  bytes);
  pool_.dma(bytes);
  runs_flushed_ += flush_count;
  if (flush_count < runs_staged_) {
    buf_.run_buf[0] = buf_.run_buf[flush_count];
    runs_staged_ -= flush_count;
  } else {
    runs_staged_ = 0;
  }
}

void WfaPairAligner::write_result(std::uint32_t pair_index,
                                  const PairResult& result) {
  pool_.set_phase(upmem::Phase::kSetup);
  if ((batch_.header.flags & kFlagSession) != 0) {
    SessionResult compact{};
    compact.score = result.score;
    compact.status = result.status;
    compact.pool_cycles_lo = result.pool_cycles_lo;
    compact.pool_cycles_hi = result.pool_cycles_hi;
    std::memcpy(buf_.run_buf.data(), &compact, sizeof(SessionResult));
    ctx_.mram_write(
        buf_.run_buf_addr,
        batch_.header.result_off + pair_index * sizeof(SessionResult),
        sizeof(SessionResult));
    pool_.dma(sizeof(SessionResult));
    return;
  }
  std::memcpy(buf_.run_buf.data(), &result, sizeof(PairResult));
  ctx_.mram_write(buf_.run_buf_addr,
                  batch_.header.result_off + pair_index * sizeof(PairResult),
                  sizeof(PairResult));
  pool_.dma(sizeof(PairResult));
}

}  // namespace

WfaPenalties wfa_penalties(const align::Scoring& scoring) {
  WfaPenalties pen;
  pen.x = 2 * (static_cast<std::int64_t>(scoring.match) + scoring.mismatch);
  pen.open = 2 * static_cast<std::int64_t>(scoring.gap_open) +
             (2 * static_cast<std::int64_t>(scoring.gap_extend) +
              scoring.match);
  pen.ext = 2 * static_cast<std::int64_t>(scoring.gap_extend) + scoring.match;
  PIMNW_CHECK_MSG(pen.x > 0 && pen.ext > 0,
                  "scoring does not convert to positive WFA penalties");
  pen.depth = static_cast<std::uint64_t>(
      std::max({pen.x, pen.open, pen.ext}) + 1);
  return pen;
}

std::uint64_t wfa_worst_cost(std::uint64_t len_a, std::uint64_t len_b,
                             const align::Scoring& scoring) {
  const WfaPenalties pen = wfa_penalties(scoring);
  const std::uint64_t shorter = std::min(len_a, len_b);
  const std::uint64_t d = len_a > len_b ? len_a - len_b : len_b - len_a;
  return static_cast<std::uint64_t>(pen.x) * shorter +
         static_cast<std::uint64_t>(pen.open) +
         static_cast<std::uint64_t>(pen.ext) * d;
}

std::uint64_t wfa_cost_cap(std::uint64_t len_a, std::uint64_t len_b,
                           const AlignConfig& config) {
  return wfa_cost_cap_impl(len_a, len_b, config.scoring,
                           config.wfa_max_cost);
}

WfaDpuProgram::WfaDpuProgram(PoolConfig pool_config, KernelVariant variant,
                             std::uint64_t wfa_max_cost)
    : pool_config_(pool_config),
      variant_(variant),
      wfa_max_cost_(wfa_max_cost) {}

void WfaDpuProgram::run(DpuContext& ctx) {
  // Boot: parse the batch header.
  Batch batch;
  batch.scratch_ = ctx.wram.alloc(128);
  ctx.cost.pool(0).set_phase(upmem::Phase::kSetup);
  ctx.mram_read(0, batch.scratch_, align8(sizeof(BatchHeader)));
  ctx.cost.pool(0).dma(align8(sizeof(BatchHeader)));
  std::memcpy(&batch.header, ctx.wram.raw(batch.scratch_, sizeof(BatchHeader)),
              sizeof(BatchHeader));
  PIMNW_CHECK_MSG(batch.header.magic == kBatchMagic,
                  "DPU launched on a bank without a batch image");
  PIMNW_CHECK_MSG((batch.header.flags & kFlagWfa) != 0,
                  "WFA program launched on a non-WFA batch image");
  batch.scoring = align::Scoring{
      .match = batch.header.match,
      .mismatch = batch.header.mismatch,
      .gap_open = batch.header.gap_open,
      .gap_extend = batch.header.gap_extend,
  };

  const WfaKernelCost& cost = wfa_kernel_cost(variant_);
  const int pools = pool_config_.pools;
  const int tasklets = pool_config_.tasklets_per_pool;
  std::vector<WfaPoolBuffers> buffers(static_cast<std::size_t>(pools));
  for (int p = 0; p < pools; ++p) {
    ctx.cost.pool(p).set_phase(upmem::Phase::kSetup);
    ctx.cost.pool(p).serial(cost.launch_setup_instr);
    buffers[static_cast<std::size_t>(p)].allocate(ctx);
  }

  // Work distribution: same dynamic pool scheduling as the NW kernel.
  for (std::uint32_t pair_index = 0; pair_index < batch.header.nr_pairs;
       ++pair_index) {
    const int p = ctx.cost.least_loaded_pool();
    upmem::PoolCost& pool = ctx.cost.pool(p);
    const PairEntry pair = batch.pair_entry(ctx, pool, pair_index);
    WfaPairAligner aligner(ctx, pool, buffers[static_cast<std::size_t>(p)],
                           batch, cost, tasklets, p, wfa_max_cost_);
    aligner.align(pair, pair_index);
  }
}

const char* WfaKernel::description() const {
  return "exact gap-affine wavefront alignment (WFA): O(s·w) cells, "
         "cost-capped, MRAM-streamed wavefronts, traceback + session capable";
}

std::uint32_t WfaKernel::batch_flags(const AlignConfig& config) const {
  return kFlagWfa | (config.traceback ? kFlagTraceback : 0);
}

std::uint32_t WfaKernel::pair_cigar_cap(std::uint64_t len_a,
                                        std::uint64_t len_b,
                                        const AlignConfig& config) const {
  // Runs merge adjacent equal ops, so there are at most as many runs as
  // alignment columns; same slack as the NW kernel.
  return config.traceback ? static_cast<std::uint32_t>(len_a + len_b + 2) : 0;
}

std::uint64_t WfaKernel::pair_scratch_bytes(std::uint64_t len_a,
                                            std::uint64_t len_b,
                                            const AlignConfig& config) const {
  // An empty side never enters the wavefront machinery (closed-form gap).
  if (len_a == 0 || len_b == 0) return 0;
  const WfaPenalties pen = wfa_penalties(config.scoring);
  const std::uint64_t cap = wfa_cost_cap(len_a, len_b, config);
  const std::uint64_t maxw = wfa_max_width(cap, len_a, len_b);
  const std::uint64_t nslots = config.traceback ? cap + 1 : pen.depth;
  return nslots * wfa_slot_bytes(maxw);
}

bool WfaKernel::pair_admissible(std::uint64_t len_a, std::uint64_t len_b,
                                const AlignConfig& config,
                                const PoolConfig& pools) const {
  (void)config;
  if (len_a > kWfaMaxSeqBases || len_b > kWfaMaxSeqBases) return false;
  // The per-pool working set is length-independent; what must fit is P of
  // them plus the batch staging area.
  return 128 + static_cast<std::uint64_t>(pools.pools) *
                   wfa_pool_wram_bytes() <=
         upmem::kWramBytes;
}

std::unique_ptr<upmem::DpuProgram> WfaKernel::make_program(
    const PimAlignerConfig& config, KernelWorkspace* workspace) const {
  (void)workspace;  // no cross-launch host scratch
  return std::make_unique<WfaDpuProgram>(config.pool, config.variant,
                                         config.align.wfa_max_cost);
}

std::span<const KernelPhase> WfaKernel::phase_table() const {
  static constexpr KernelPhase kPhases[] = {
      {upmem::Phase::kSetup, "setup"},
      {upmem::Phase::kCompute, "wavefront"},
      {upmem::Phase::kBtDma, "wf-dma"},
      {upmem::Phase::kTraceback, "backtrace"},
  };
  return kPhases;
}

align::AlignResult WfaKernel::host_reference(std::string_view a,
                                             std::string_view b,
                                             const AlignConfig& config) const {
  align::WfaOptions options;
  options.max_cost = config.wfa_max_cost;
  if (config.traceback) {
    if (auto result = align::wfa_align(a, b, config.scoring, options)) {
      return *result;
    }
  } else {
    if (auto score = align::wfa_score(a, b, config.scoring, options)) {
      align::AlignResult result;
      result.reached_end = true;
      result.score = *score;
      return result;
    }
  }
  return {};  // cost bound exceeded: reached_end = false
}

const PimKernel& wfa_kernel() {
  static const WfaKernel kKernel;
  return kKernel;
}

}  // namespace pimnw::core
