// Portable half of the fast-path kernels: runtime AVX2 detection and the
// dense branchless reference sweep. This TU is compiled with the project's
// default flags only (no -mavx2), so it is safe to execute anywhere; the
// intrinsics live in kernel_simd_avx2.cpp, added to the build only when the
// toolchain targets x86-64 (PIMNW_HAVE_AVX2).
#include "core/kernel_simd.hpp"

#include "align/bt_code.hpp"

namespace pimnw::core::simd {
namespace {

using align::Score;

template <bool kTraceback>
void dense_sweep(const DiagSpan& d) {
  for (std::int64_t t = 0; t < d.len; ++t) {
    const Score i_opn = d.up_h[t] - d.open_ext;
    const Score i_ext = d.up_i[t] - d.gap_extend;
    const bool i_open = i_opn >= i_ext;
    const Score new_i = i_open ? i_opn : i_ext;

    const Score d_opn = d.left_h[t] - d.open_ext;
    const Score d_ext = d.left_d[t] - d.gap_extend;
    const bool d_open = d_opn >= d_ext;
    const Score new_d = d_open ? d_opn : d_ext;

    const bool equal = d.base_a[t] == d.base_b[t];
    const Score h_diag = d.diag_h[t] + (equal ? d.match : -d.mismatch);

    const bool i_ge_d = new_i >= new_d;
    const Score gap_best = i_ge_d ? new_i : new_d;
    const bool diag_best = h_diag >= gap_best;

    d.out_h[t] = diag_best ? h_diag : gap_best;
    d.out_i[t] = new_i;
    d.out_d[t] = new_d;
    if constexpr (kTraceback) {
      const std::uint8_t origin =
          diag_best ? (equal ? align::bt::kOriginDiagMatch
                             : align::bt::kOriginDiagMismatch)
                    : (i_ge_d ? align::bt::kOriginI : align::bt::kOriginD);
      d.codes[t] = align::bt::make(origin, i_open, d_open);
    }
  }
}

}  // namespace

bool avx2_available() {
#if defined(PIMNW_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void diag_update_dense(const DiagSpan& d) {
  if (d.codes != nullptr) {
    dense_sweep<true>(d);
  } else {
    dense_sweep<false>(d);
  }
}

#if !defined(PIMNW_HAVE_AVX2)
// No AVX2 translation unit in this build: keep the symbol, run the dense
// sweep. avx2_available() already steers callers away from this path.
void diag_update_avx2(const DiagSpan& d) { diag_update_dense(d); }
#endif

}  // namespace pimnw::core::simd
