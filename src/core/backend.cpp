#include "core/backend.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "core/load_balance.hpp"
#include "core/wfa_kernel.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace pimnw::core {
namespace {

/// Fold one run's RunReport into an accumulated one: additive fields sum,
/// ratio fields combine as batch-weighted means, makespans add (submissions
/// to one backend execute sequentially on the modeled timeline).
void merge_run_report(RunReport& into, const RunReport& add) {
  const double b0 = static_cast<double>(into.batches);
  const double b1 = static_cast<double>(add.batches);
  if (b0 + b1 > 0) {
    auto weighted = [b0, b1](double x, double y) {
      return (x * b0 + y * b1) / (b0 + b1);
    };
    into.host_overhead_fraction =
        weighted(into.host_overhead_fraction, add.host_overhead_fraction);
    into.mean_pipeline_utilization = weighted(
        into.mean_pipeline_utilization, add.mean_pipeline_utilization);
    into.mean_mram_overhead =
        weighted(into.mean_mram_overhead, add.mean_mram_overhead);
    into.load_imbalance = weighted(into.load_imbalance, add.load_imbalance);
  }
  into.makespan_seconds += add.makespan_seconds;
  into.transfer_seconds += add.transfer_seconds;
  into.host_prep_seconds += add.host_prep_seconds;
  into.batches += add.batches;
  into.total_pairs += add.total_pairs;
  into.rejected_pairs += add.rejected_pairs;
  into.bytes_to_dpus += add.bytes_to_dpus;
  into.bytes_broadcast += add.bytes_broadcast;
  into.bytes_from_dpus += add.bytes_from_dpus;
  into.total_instructions += add.total_instructions;
  into.total_dma_bytes += add.total_dma_bytes;
}

}  // namespace

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPim:
      return "pim";
    case BackendKind::kCpu:
      return "cpu";
    case BackendKind::kWfa:
      return "wfa";
    case BackendKind::kSession:
      return "session";
    case BackendKind::kPimWfa:
      return "pimwfa";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_kind(std::string_view name) {
  if (name == "pim") return BackendKind::kPim;
  if (name == "cpu") return BackendKind::kCpu;
  if (name == "wfa") return BackendKind::kWfa;
  if (name == "session") return BackendKind::kSession;
  if (name == "pimwfa") return BackendKind::kPimWfa;
  return std::nullopt;
}

// ---------------------------------------------------------------- PoolBackend

/// One submitted batch of a host backend: output slots, a remaining-pair
/// counter the jobs drain, and streaming accounting. Jobs hold a raw
/// pointer; the entry stays in pending_ until its wait() observes
/// remaining == 0, so the pointer outlives every job.
struct PoolBackend::Pending {
  std::span<const PairInput> pairs;
  std::vector<PairOutput> outputs;
  std::atomic<std::size_t> remaining{0};
  std::atomic<std::uint64_t> cells{0};
  std::atomic<std::uint64_t> aligned{0};
  Stopwatch watch;
  double seconds = 0.0;  // written by the last job, mutex held
  bool done = false;     // mutex held
  /// Set (after done, outside the mutex) by the last job — the lock-free
  /// park predicate wait() hands to ThreadPool::park (a predicate must not
  /// take the backend mutex: submit() enqueues while holding it, and
  /// enqueue takes the pool mutex the predicate runs under).
  std::atomic<bool> finished{false};
  std::exception_ptr error;  // first failure, mutex held
};

PoolBackend::PoolBackend(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &global_pool()) {}

PoolBackend::~PoolBackend() {
  // Never destroy with jobs in flight (they reference *this): a missed
  // drain() is a usage bug, not something to limp through.
  PIMNW_CHECK_MSG(pending_.empty(),
                  "PoolBackend destroyed with submitted batches not yet "
                  "waited/drained");
}

AlignerBackend::Ticket PoolBackend::submit(std::span<const PairInput> pairs) {
  auto pending = std::make_unique<Pending>();
  Pending* p = pending.get();
  p->pairs = pairs;
  p->outputs.assign(pairs.size(), PairOutput{});
  p->remaining.store(pairs.size(), std::memory_order_relaxed);
  p->watch.reset();

  Ticket ticket;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ticket = next_ticket_++;
    if (pairs.empty()) {
      p->done = true;
    }
    pending_.emplace(ticket, std::move(pending));
  }
  // One job per pair: the shared deques interleave them with other
  // backends' jobs and with the PiM engine's DPU simulations, which is
  // what makes the dispatcher's backends genuinely concurrent.
  const char* label = backend_kind_name(kind());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    pool_->post([this, p, label, i] {
      try {
        PIMNW_TRACE_SPAN(std::string(label) + " pair");
        PairOutput output = align_one(p->pairs[i]);
        p->cells.fetch_add(output.cells, std::memory_order_relaxed);
        if (output.ok) p->aligned.fetch_add(1, std::memory_order_relaxed);
        p->outputs[i] = std::move(output);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!p->error) p->error = std::current_exception();
      }
      if (p->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // The waiter frees *p — and may destroy the whole backend — the
        // moment it observes done under mutex_: publish finished inside the
        // same critical section (so the waiter's lock acquisition orders it
        // before the free) and touch nothing of *this afterwards.
        ThreadPool* pool = pool_;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          p->seconds = p->watch.seconds();
          p->done = true;
          p->finished.store(true, std::memory_order_seq_cst);
        }
        pool->unpark_all();
      }
    });
  }
  return ticket;
}

std::vector<PairOutput> PoolBackend::wait(Ticket ticket) {
  Pending* p;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(ticket);
    PIMNW_CHECK_MSG(it != pending_.end(),
                    "PoolBackend::wait: unknown or already-waited ticket");
    p = it->second.get();
  }
  // Help the pool while there is work; when the queues run dry but this
  // ticket is still executing on some worker, park on the pool's
  // sleep/notify hook instead of timed-wait polling (the last job's
  // unpark_all — or any enqueue — wakes us).
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (p->done) break;
    }
    if (!pool_->help_one()) {
      pool_->park(
          [p] { return p->finished.load(std::memory_order_seq_cst); });
    }
  }
  std::unique_ptr<Pending> owned;
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(ticket);
    owned = std::move(it->second);
    pending_.erase(it);
    account(*owned);
    error = owned->error;
  }
  if (error) std::rethrow_exception(error);
  return std::move(owned->outputs);
}

void PoolBackend::account(const Pending& pending) {
  ++accum_.submissions;
  accum_.kind = kind();
  accum_.total_pairs += pending.pairs.size();
  accum_.aligned += pending.aligned.load(std::memory_order_relaxed);
  accum_.total_cells += pending.cells.load(std::memory_order_relaxed);
  accum_.measured_seconds += pending.seconds;
  accum_.cells_per_second =
      accum_.measured_seconds > 0
          ? static_cast<double>(accum_.total_cells) / accum_.measured_seconds
          : 0.0;
}

BackendReport PoolBackend::drain() {
  for (;;) {
    Ticket ticket;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.empty()) break;
      ticket = pending_.begin()->first;
    }
    (void)wait(ticket);  // rethrows the first failure of that ticket
  }
  std::lock_guard<std::mutex> lock(mutex_);
  BackendReport report = accum_;
  report.kind = kind();
  accum_ = BackendReport{};
  return report;
}

// ----------------------------------------------------------------- PimBackend

PimBackend::PimBackend(Config config)
    : config_(std::move(config)), aligner_(config_.aligner) {}

PimBackend::~PimBackend() {
  PIMNW_CHECK_MSG(queued_.empty(),
                  "PimBackend destroyed with submitted batches not yet "
                  "waited/drained");
}

BackendCapabilities PimBackend::capabilities() const {
  BackendCapabilities caps;
  caps.traceback = config_.aligner.align.traceback;
  caps.affine_gaps = true;
  caps.max_pair_length = 0;
  caps.modeled_time = true;
  return caps;
}

double PimBackend::estimate_seconds(std::size_t len_a,
                                    std::size_t len_b) const {
  // The dispatcher routes on host wall-clock, and the host cost of this
  // backend is the simulation itself — charged with the same W(m,n) =
  // (m+n)·w workload model the LPT balancer uses (§4.1.2).
  const std::uint64_t cells = pair_workload(
      len_a, len_b,
      static_cast<std::uint64_t>(config_.aligner.align.band_width));
  return static_cast<double>(cells) / config_.sim_cells_per_second *
         cost_scale();
}

AlignerBackend::Ticket PimBackend::submit(std::span<const PairInput> pairs) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Ticket ticket = next_ticket_++;
  queued_.emplace(ticket, pairs);
  return ticket;
}

std::vector<PairOutput> PimBackend::wait(Ticket ticket) {
  std::span<const PairInput> pairs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queued_.find(ticket);
    PIMNW_CHECK_MSG(it != queued_.end(),
                    "PimBackend::wait: unknown or already-waited ticket");
    pairs = it->second;
    queued_.erase(it);
  }
  PIMNW_TRACE_SPAN("pim backend batch");
  Stopwatch watch;
  std::vector<PairOutput> outputs;
  const RunReport report = aligner_.align_pairs(pairs, &outputs);
  const double wall = watch.seconds();

  std::lock_guard<std::mutex> lock(mutex_);
  ++accum_.submissions;
  accum_.kind = kind();  // kPim, or kPimWfa in the subclass
  accum_.total_pairs += pairs.size();
  for (const PairOutput& output : outputs) {
    if (output.ok) ++accum_.aligned;
  }
  accum_.measured_seconds += wall;
  accum_.modeled_seconds += report.makespan_seconds;
  merge_run_report(accum_.pim, report);
  return outputs;
}

BackendReport PimBackend::drain() {
  for (;;) {
    Ticket ticket;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queued_.empty()) break;
      ticket = queued_.begin()->first;
    }
    (void)wait(ticket);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  BackendReport report = accum_;
  report.kind = kind();
  accum_ = BackendReport{};
  return report;
}

// ------------------------------------------------------------- PimWfaBackend

PimWfaBackend::PimWfaBackend(Config config)
    : PimBackend([&config] {
        PimBackend::Config base;
        base.aligner = std::move(config.aligner);
        base.aligner.kernel = &wfa_kernel();
        base.sim_cells_per_second = config.sim_cells_per_second;
        return base;
      }()),
      expected_divergence_(config.expected_divergence),
      sim_cells_per_second_(config.sim_cells_per_second) {}

BackendCapabilities PimWfaBackend::capabilities() const {
  BackendCapabilities caps;
  caps.traceback = aligner_config().align.traceback;
  caps.affine_gaps = true;
  caps.max_pair_length = kWfaMaxSeqBases;  // WRAM-resident sequences
  caps.modeled_time = true;
  return caps;
}

double PimWfaBackend::estimate_cells(std::size_t len_a,
                                     std::size_t len_b) const {
  // Modeled alignment cost: one error per expected_divergence bases at the
  // converted mismatch penalty x = 2(a+b), clamped to the configured cost
  // cap (beyond it the kernel gives up, so no more work accrues). The sweep
  // touches ~s wavefronts of up to min(2s+1, m+n) diagonals — never fewer
  // cells than the one pass the extend loop makes over similar sequences.
  const align::Scoring& scoring = aligner_config().align.scoring;
  const double span = static_cast<double>(len_a + len_b);
  const double penalty =
      2.0 * static_cast<double>(scoring.match + scoring.mismatch);
  double cost = expected_divergence_ * span * 0.5 * penalty;
  const std::uint64_t cap = aligner_config().align.wfa_max_cost;
  if (cap != 0) cost = std::min(cost, static_cast<double>(cap));
  const double width = std::min(2.0 * cost + 1.0, span);
  return std::max(span, cost * width);
}

double PimWfaBackend::estimate_seconds(std::size_t len_a,
                                       std::size_t len_b) const {
  return estimate_cells(len_a, len_b) / sim_cells_per_second_ * cost_scale();
}

// ------------------------------------------------------------- SessionBackend

SessionBackend::SessionBackend(Config config) : config_(std::move(config)) {
  for (std::size_t i = 0; i < config_.db.size(); ++i) {
    // First occurrence wins for duplicate sequences — identical content
    // aligns identically, so any index with that content is correct.
    index_.emplace(std::string_view(config_.db[i]),
                   static_cast<std::uint32_t>(i));
  }
  session_ = std::make_unique<DbSession>(config_.db, config_.aligner);
}

SessionBackend::~SessionBackend() {
  PIMNW_CHECK_MSG(queued_.empty(),
                  "SessionBackend destroyed with submitted batches not yet "
                  "waited/drained");
}

BackendCapabilities SessionBackend::capabilities() const {
  BackendCapabilities caps;
  caps.traceback = false;  // sessions are score-only
  caps.affine_gaps = true;
  caps.max_pair_length = 0;
  caps.modeled_time = true;
  return caps;
}

double SessionBackend::estimate_seconds(std::size_t len_a,
                                        std::size_t len_b) const {
  const std::uint64_t cells = pair_workload(
      len_a, len_b,
      static_cast<std::uint64_t>(config_.aligner.align.band_width));
  return static_cast<double>(cells) / config_.sim_cells_per_second *
         cost_scale();
}

AlignerBackend::Ticket SessionBackend::submit(
    std::span<const PairInput> pairs) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Ticket ticket = next_ticket_++;
  queued_.emplace(ticket, pairs);
  return ticket;
}

std::vector<PairOutput> SessionBackend::wait(Ticket ticket) {
  std::span<const PairInput> pairs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queued_.find(ticket);
    PIMNW_CHECK_MSG(it != queued_.end(),
                    "SessionBackend::wait: unknown or already-waited ticket");
    pairs = it->second;
    queued_.erase(it);
  }
  // Resolve the views against the resident database: only index pairs cross
  // the modeled bus.
  std::vector<IndexPair> indices;
  indices.reserve(pairs.size());
  for (const PairInput& pair : pairs) {
    const auto a = index_.find(pair.a);
    const auto b = index_.find(pair.b);
    PIMNW_CHECK_MSG(a != index_.end() && b != index_.end(),
                    "SessionBackend: submitted pair is not part of the "
                    "session database");
    indices.push_back({a->second, b->second});
  }
  PIMNW_TRACE_SPAN("session backend batch");
  Stopwatch watch;
  std::vector<PairOutput> outputs;
  const RunReport cumulative = session_->align_pairs(indices, &outputs);
  const double wall = watch.seconds();

  std::lock_guard<std::mutex> lock(mutex_);
  ++accum_.submissions;
  accum_.kind = BackendKind::kSession;
  accum_.total_pairs += pairs.size();
  for (const PairOutput& output : outputs) {
    if (output.ok) ++accum_.aligned;
  }
  accum_.measured_seconds += wall;
  // The session report is cumulative (that is the point — the broadcast
  // amortizes), so fold only this wait's makespan delta and keep the
  // lifetime totals as the pim report.
  accum_.modeled_seconds += cumulative.makespan_seconds - reported_makespan_;
  reported_makespan_ = cumulative.makespan_seconds;
  accum_.pim = cumulative;
  return outputs;
}

BackendReport SessionBackend::drain() {
  for (;;) {
    Ticket ticket;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queued_.empty()) break;
      ticket = queued_.begin()->first;
    }
    (void)wait(ticket);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  BackendReport report = accum_;
  report.kind = BackendKind::kSession;
  report.pim = session_->finish();  // always the current cumulative totals
  accum_ = BackendReport{};
  return report;
}

// ----------------------------------------------------------------- CpuBackend

CpuBackend::CpuBackend(Config config, ThreadPool* pool)
    : PoolBackend(pool), config_(config) {}

BackendCapabilities CpuBackend::capabilities() const {
  BackendCapabilities caps;
  caps.traceback = config_.options.traceback;
  caps.affine_gaps = true;
  caps.max_pair_length = 0;
  caps.modeled_time = false;
  return caps;
}

double CpuBackend::estimate_seconds(std::size_t len_a,
                                    std::size_t len_b) const {
  const std::uint64_t cells = pair_workload(
      len_a, len_b, static_cast<std::uint64_t>(config_.options.band_width));
  return static_cast<double>(cells) / config_.cells_per_second * cost_scale();
}

PairOutput CpuBackend::align_one(const PairInput& pair) const {
  align::AlignResult result =
      baseline::ksw2_align(pair.a, pair.b, config_.scoring, config_.options);
  PairOutput output;
  output.ok = result.reached_end;
  output.status = output.ok ? PairStatus::kOk : PairStatus::kUnreachable;
  output.score = result.reached_end ? result.score : align::kNegInf;
  output.cigar = std::move(result.cigar);
  output.cells = result.cells;
  return output;
}

// ----------------------------------------------------------------- WfaBackend

WfaBackend::WfaBackend(Config config, ThreadPool* pool)
    : PoolBackend(pool), config_(config) {}

BackendCapabilities WfaBackend::capabilities() const {
  BackendCapabilities caps;
  caps.traceback = config_.traceback;
  caps.affine_gaps = true;
  caps.max_pair_length = 0;
  caps.modeled_time = false;
  return caps;
}

double WfaBackend::estimate_cells(std::size_t len_a, std::size_t len_b) const {
  // Modeled alignment cost: one error per expected_divergence bases, each
  // costing roughly the converted mismatch penalty x = 2(a+b) (see
  // align/wfa.hpp). The wavefront sweep then touches ~s wavefronts of up to
  // min(2s+1, m+n) diagonals each, never fewer cells than one pass over
  // the sequences.
  const double span = static_cast<double>(len_a + len_b);
  const double penalty =
      2.0 * static_cast<double>(config_.scoring.match + config_.scoring.mismatch);
  const double cost = config_.expected_divergence * span * 0.5 * penalty;
  const double width = std::min(2.0 * cost + 1.0, span);
  return std::max(span, cost * width);
}

double WfaBackend::estimate_seconds(std::size_t len_a,
                                    std::size_t len_b) const {
  return estimate_cells(len_a, len_b) / config_.cells_per_second *
         cost_scale();
}

PairOutput WfaBackend::align_one(const PairInput& pair) const {
  PairOutput output;
  if (config_.traceback) {
    std::optional<align::AlignResult> result =
        align::wfa_align(pair.a, pair.b, config_.scoring, config_.options);
    if (result.has_value()) {
      output.ok = true;
      output.status = PairStatus::kOk;
      output.score = result->score;
      output.cigar = std::move(result->cigar);
      output.cells = result->cells;
    }
  } else {
    const std::optional<align::Score> score =
        align::wfa_score(pair.a, pair.b, config_.scoring, config_.options);
    if (score.has_value()) {
      output.ok = true;
      output.status = PairStatus::kOk;
      output.score = *score;
      // Score-only WFA does not report a cell count; charge the modeled
      // estimate so throughput stays comparable.
      output.cells = static_cast<std::uint64_t>(
          estimate_cells(pair.a.size(), pair.b.size()));
    }
  }
  return output;
}

}  // namespace pimnw::core
