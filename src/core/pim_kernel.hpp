// Algorithm-agnostic PiM kernel interface (DESIGN.md §16).
//
// The engine, MRAM layout and session layers used to hardcode the banded-NW
// kernel's geometry: flag words, CIGAR slot sizing, per-pool MRAM scratch
// strides and the NwDpuProgram construction sites. A PimKernel owns all of
// that per algorithm:
//
//  * image planning — batch_flags / pair_cigar_cap / pair_scratch_bytes feed
//    core/mram_layout.cpp, which keeps the *shared* container format
//    (BatchHeader, tables, results) and asks the kernel only for the
//    algorithm-specific numbers. Flag-word bits other than kFlagSession
//    (a layout-level concern) are owned by the kernel.
//  * admission — pair_admissible rejects pairs whose WRAM working set the
//    kernel cannot host (MRAM admission stays generic via
//    single_pair_image_bytes, which already consults the kernel's hooks).
//  * execution — make_program builds the upmem::DpuProgram for one launch;
//    make_workspace builds the per-worker host-side scratch arena the
//    engine keeps per thread (purely host wall-clock, never modeled).
//  * profiling — phase_table declares which upmem::Phase rows the kernel
//    charges and what to call them, so pimnw_prof and the reconciliation
//    tests key off the kernel instead of a hand-maintained table.
//  * verification — host_reference is the executable specification the
//    verify mode cross-checks every DPU result against.
//
// Contract notes:
//  * pair_cigar_cap and pair_scratch_bytes must be monotone non-decreasing
//    in each length argument — the layout takes the max over a batch's pairs
//    (and DbSession over the database's two longest sequences) and relies on
//    monotonicity for that max to be the honest worst case.
//  * Kernels are stateless singletons; all launch state lives in the
//    DpuProgram instance and the (optional) KernelWorkspace.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "align/result.hpp"
#include "core/params.hpp"
#include "upmem/dpu.hpp"

namespace pimnw::core {

/// Per-worker host-side scratch owned by the execution engine's arenas.
/// Holds whatever the kernel's simulator wants to reuse across launches
/// (e.g. the NW fast path's band snapshots); models no DPU state.
class KernelWorkspace {
 public:
  virtual ~KernelWorkspace() = default;
};

/// One row of a kernel's phase table: the cost-model attribution slot it
/// charges plus the kernel-specific label to print for it.
struct KernelPhase {
  upmem::Phase phase;
  const char* label;
};

class PimKernel {
 public:
  virtual ~PimKernel() = default;

  /// Registry name (e.g. "nw", "wfa") — stable, used in params_json and CLI.
  virtual const char* name() const = 0;
  /// One-line capability summary for --list-kernels.
  virtual const char* description() const = 0;

  // --- MRAM image planning (consumed by core/mram_layout.cpp) ---

  /// Kernel-owned bits of BatchHeader::flags for this config. The layout
  /// ORs in kFlagSession itself for session rounds.
  virtual std::uint32_t batch_flags(const AlignConfig& config) const = 0;
  /// Capacity (in 4-byte runs) of the CIGAR slot for a (len_a, len_b) pair;
  /// 0 when the config is score-only.
  virtual std::uint32_t pair_cigar_cap(std::uint64_t len_a,
                                       std::uint64_t len_b,
                                       const AlignConfig& config) const = 0;
  /// Per-pool MRAM scratch bytes a (len_a, len_b) pair needs (BT rows for
  /// NW, retained wavefronts for WFA). The layout sizes one stride per pool
  /// as the max over the batch's pairs.
  virtual std::uint64_t pair_scratch_bytes(std::uint64_t len_a,
                                           std::uint64_t len_b,
                                           const AlignConfig& config) const = 0;

  // --- admission ---

  /// Whether the kernel's WRAM working set can host this pair at all
  /// (MRAM admission is generic: single_pair_image_bytes vs the bank).
  virtual bool pair_admissible(std::uint64_t len_a, std::uint64_t len_b,
                               const AlignConfig& config,
                               const PoolConfig& pools) const {
    (void)len_a;
    (void)len_b;
    (void)config;
    (void)pools;
    return true;
  }

  /// Whether the kernel can run kFlagSession rounds (resident database,
  /// compact entries/results, score-only).
  virtual bool supports_session() const { return true; }

  // --- execution ---

  /// Per-worker host scratch; may return nullptr when the kernel keeps no
  /// cross-launch host state.
  virtual std::unique_ptr<KernelWorkspace> make_workspace() const {
    return nullptr;
  }

  /// Build the program for one DPU launch. `workspace` is this worker's
  /// arena from make_workspace(), or nullptr (the program then allocates
  /// private scratch — same results, more host allocation).
  virtual std::unique_ptr<upmem::DpuProgram> make_program(
      const PimAlignerConfig& config, KernelWorkspace* workspace) const = 0;

  // --- profiling ---

  /// The cost-model phases this kernel charges, with kernel-specific labels,
  /// in display order. Attribution itself stays in upmem/cost_model (it is
  /// kernel-agnostic); this table is how consumers know which rows are live
  /// and what they mean for this algorithm.
  virtual std::span<const KernelPhase> phase_table() const = 0;

  // --- verification ---

  /// Host-side executable specification: the result every DPU output must
  /// be bit-identical to (PimAlignerConfig::verify re-checks each pair).
  virtual align::AlignResult host_reference(std::string_view a,
                                            std::string_view b,
                                            const AlignConfig& config) const = 0;
};

/// The banded adaptive Needleman–Wunsch kernel (paper §4.2) — the first
/// registrant; the default when PimAlignerConfig::kernel is null.
const PimKernel& nw_kernel();

/// The wavefront-alignment kernel (ROADMAP item 4, Diab et al. 2204.02085):
/// exact affine WFA with MRAM-streamed wavefronts.
const PimKernel& wfa_kernel();

/// All registered kernels, in registration order. A deterministic explicit
/// list (not static-init magic): a kernel in a static library with no other
/// reference would be dropped by the linker before any registrar ran.
std::span<const PimKernel* const> registered_kernels();

/// Look up a kernel by registry name; nullptr when unknown.
const PimKernel* find_kernel(std::string_view name);

/// The kernel a config runs: config.kernel, defaulting to nw_kernel().
inline const PimKernel& kernel_for(const PimAlignerConfig& config) {
  return config.kernel != nullptr ? *config.kernel : nw_kernel();
}

}  // namespace pimnw::core
