// Streaming alignment service (ISSUE 7, DESIGN.md §14).
//
// Everything below the dispatcher is batch-shaped: the PiM host wants
// rank-sized batches (64 DPUs × P pools × several pairs each) before a
// launch amortizes its transfer and launch overheads. A read mapper or an
// alignment RPC server is request-shaped: many client threads each hold ONE
// pair and want ONE answer, with a latency budget. AlignService bridges the
// two:
//
//  * submit() is lock-free on the producer side — a Treiber-stack CAS push
//    plus a couple of relaxed-to-seq_cst atomic counters. Client threads
//    never take a mutex on the hot path (the only mutex they can touch is
//    the coalescer wake lock, and only when the coalescer is asleep).
//
//  * A dedicated coalescer thread drains the stack in arrival order and
//    forms batches under a time/size admission window: flush when
//    max_batch_pairs are waiting (a "full" flush — the rank-sized fast
//    path) or when the oldest admitted request has waited max_linger
//    ("linger" — the latency bound), or on stop() ("drain"). The coalescer
//    is a plain std::thread, which keeps Dispatcher::align off the worker
//    pool — the PiM simulation legally runs on it (see core/backend.hpp).
//
//  * Backpressure is modeled, not guessed: every admitted pair is charged
//    its Dispatcher::min_estimate_seconds — the cheapest calibrated backend
//    estimate, i.e. the work the pair will cost under cost-model routing —
//    into an atomic backlog. When the backlog (or a plain pair-count cap)
//    exceeds the configured capacity, submit() either rejects with
//    PairStatus::kQueueFull (default — the caller sheds load) or blocks
//    until the queue drains (block_when_full). Past saturation this bounds
//    p99: requests fail fast instead of queueing without bound.
//
// Results are bit-identical to PimAligner::run_batches for the same pairs:
// the service changes only *when* pairs are dispatched, never the
// arithmetic. Per-pair modeled cycles and DMA bytes are batch-composition
// independent by construction (pool-critical-path deltas; see engine.cpp),
// so even coalescing-dependent batch shapes cannot perturb them —
// service_test pins scores, CIGARs, cycles and DMA against a direct
// align_pairs run.
//
// Threading contract: the dispatcher and its backends belong to the service
// while it runs — do not call Dispatcher::align (or the backends) from
// other threads between construction and stop(). submit() is safe from any
// number of threads. stop() drains: every admitted request is flushed and
// resolved before the coalescer exits; submissions that race stop() resolve
// as kShutdown, never hang.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/dispatch.hpp"
#include "core/types.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"

namespace pimnw::core {

struct ServiceConfig {
  /// Flush as soon as this many pairs are waiting. 0 = rank-sized auto:
  /// kDpusPerRank × pools × 2 from the registered PiM backend's config (the
  /// same formula PimAligner uses for its auto batch), or 768 when no PiM
  /// backend is registered.
  std::size_t max_batch_pairs = 0;
  /// Flush when the oldest admitted request has waited this long, even if
  /// the batch is not full — the latency bound under light load.
  double max_linger_seconds = 2e-3;
  /// Admission cap on pairs admitted but not yet completed (0 = none).
  std::size_t max_queue_pairs = 0;
  /// Admission cap on the modeled backlog: Σ min_estimate_seconds over
  /// admitted-but-incomplete pairs (0 = none). This is the latency a new
  /// request would queue behind, so capping it caps p99 under overload.
  double max_backlog_seconds = 0.0;
  /// When a cap is hit: false = reject with kQueueFull (shed load), true =
  /// block the submitting thread until capacity frees (closed-loop client).
  bool block_when_full = false;
  /// Record per-request latency samples for metrics() quantiles. Costs one
  /// mutex acquisition per flush (not per request); disable only for
  /// submit-rate microbenchmarks.
  bool collect_latencies = true;
  /// Cap on retained latency samples per series. Below the cap every sample
  /// is kept and metrics() quantiles are exact (nearest-rank, as before);
  /// past it, reservoir sampling (Algorithm R, deterministic seed) keeps a
  /// uniform subsample so a week-long run holds bounded memory. The bounded
  /// Prometheus histograms are unaffected — they see every sample.
  std::size_t latency_sample_cap = 65536;
  /// Deadline-miss SLO objective: the target fraction of admitted requests
  /// that resolve without kDeadlineExceeded. Burn rate 1.0 = consuming the
  /// error budget exactly as fast as the objective allows.
  double slo_objective = 0.999;
  /// Sliding windows for the burn-rate pair (short = paging signal, long =
  /// ticket signal, the standard multi-window alert shape).
  double slo_short_window_seconds = 60.0;
  double slo_long_window_seconds = 600.0;
  /// Deadline-storm black box: when one coalescer sweep expires at least
  /// this many deadlines (0 = disabled), dump the flight recorder to
  /// `storm_dump_path` (once per service lifetime).
  std::size_t storm_dump_threshold = 0;
  std::string storm_dump_path;
};

/// What a client's future resolves to: the alignment plus the request's own
/// latency decomposition (wall-clock, by the service's steady clock).
struct ServiceResult {
  PairOutput output;
  /// submit() return → the flush that carried the pair (batch formation).
  double queue_seconds = 0.0;
  /// submit() return → result ready (queue + dispatch).
  double total_seconds = 0.0;
  /// 1-based id of the carrying flush; 0 when never dispatched (rejected /
  /// deadline / shutdown).
  std::uint64_t batch_id = 0;
  /// Pairs in that flush — the fill the request shared its launch with.
  std::size_t batch_pairs = 0;
};

/// Exact (nearest-rank) sample quantiles — no interpolation, so tests can
/// pin them against hand-computed values.
struct LatencyStats {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Nearest-rank quantile of an ascending-sorted sample set: the smallest
/// element whose cumulative rank reaches q (q in (0, 1]); sorted[ceil(q·n)-1].
double exact_quantile(const std::vector<double>& sorted_ascending, double q);

/// Sort a copy of `seconds` and fill a LatencyStats (values in ms).
LatencyStats summarize_latencies(const std::vector<double>& seconds);

struct ServiceMetrics {
  std::uint64_t submitted = 0;   // submit() calls, any outcome
  std::uint64_t completed = 0;   // dispatched and resolved
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t flushes_full = 0;    // size-triggered (rank-sized fast path)
  std::uint64_t flushes_linger = 0;  // time-triggered
  std::uint64_t flushes_drain = 0;   // stop() drain
  /// Dispatched pairs / (flushes × max_batch_pairs): 1.0 = every launch
  /// rank-sized, → 0 = latency-bound trickle.
  double batch_fill_mean = 0.0;
  /// High-water marks over the run.
  std::uint64_t max_queue_depth = 0;
  double max_backlog_seconds = 0.0;
  /// Coalescer wall-clock inside Dispatcher::align — the saturation
  /// denominator (busy/elapsed → how loaded the backend stage is).
  double busy_seconds = 0.0;
  /// Modeled PiM makespan summed over flushes (BackendReport.modeled_seconds
  /// across backends; 0 when only host backends ran). Launches are
  /// rank-granular on the modeled device, so this is where coalescing pays:
  /// a batch=1 flush bills a whole launch for one pair's work.
  double modeled_seconds = 0.0;
  LatencyStats queue_wait;     // submit → flush
  LatencyStats total_latency;  // submit → resolve
  /// Samples ever recorded per series (>= the retained count once the
  /// latency_sample_cap reservoir engages).
  std::uint64_t latency_samples_seen = 0;
  /// Deadline-miss SLO burn rates over the configured short/long windows,
  /// evaluated at snapshot time (0 when nothing was recorded in a window).
  double slo_burn_short = 0.0;
  double slo_burn_long = 0.0;
};

void write_service_json(std::ostream& out, const ServiceMetrics& metrics);

class AlignService {
 public:
  /// The dispatcher is borrowed and must outlive the service; see the
  /// threading contract in the file comment.
  explicit AlignService(Dispatcher* dispatcher, ServiceConfig config = {});
  ~AlignService();  // stop()

  AlignService(const AlignService&) = delete;
  AlignService& operator=(const AlignService&) = delete;

  /// Submit one pair. The sequence views must stay alive until the returned
  /// future resolves. `deadline_seconds` (0 = none) is a relative budget:
  /// if the request is still queued when it expires, it resolves as
  /// kDeadlineExceeded at the next flush instead of being dispatched.
  /// Never blocks unless block_when_full; never throws on overload — every
  /// admission failure is a PairStatus on the future.
  std::future<ServiceResult> submit(PairInput pair,
                                    double deadline_seconds = 0.0);

  /// Flush every admitted request, resolve every future, join the
  /// coalescer. Idempotent; the destructor calls it.
  void stop();

  /// Snapshot of the counters + exact latency quantiles so far. Cheap
  /// enough to poll, but sorts the sample vectors — call between load
  /// phases, not per-request.
  ServiceMetrics metrics() const;

  /// The resolved configuration (max_batch_pairs after the auto rule).
  const ServiceConfig& config() const { return config_; }

 private:
  struct Request {
    PairInput pair;
    std::promise<ServiceResult> promise;
    double submit_seconds = 0.0;    // service clock at admission
    double deadline_seconds = 0.0;  // absolute on the service clock; 0=none
    double submit_us = 0.0;         // trace timestamp (0 when tracing off)
    std::uint64_t cost_us = 0;      // backlog charge to undo at completion
    Request* next = nullptr;        // Treiber-stack link
  };

  enum class FlushKind { kFull, kLinger, kDrain };

  void coalescer_main();
  /// Dispatch `batch` (arrival order), resolve its futures, undo its
  /// admission charges. Expired-deadline requests must already be filtered.
  void flush(std::vector<Request*>& batch, FlushKind kind);
  /// Resolve a request without dispatching it (reject / deadline expiry /
  /// shutdown), undoing its admission charges if it was admitted.
  void resolve_undispatched(Request* request, PairStatus status,
                            bool was_admitted);
  void undo_admission(const Request& request);
  /// Reservoir-bounded sample push (metrics_mutex_ must be held).
  void record_sample_locked(std::vector<double>& samples, double value);
  /// Record `count` deadline-SLO events into both burn windows and refresh
  /// the exported burn gauges.
  void record_slo(double now_seconds, bool good, std::size_t count = 1);
  /// Pop the whole incoming stack and append it to `pending` in arrival
  /// order.
  void drain_incoming(std::vector<Request*>& pending);

  Dispatcher* dispatcher_;
  ServiceConfig config_;
  Stopwatch clock_;  // all Request timestamps are on this clock

  // Producer side: lock-free MPSC stack + admission accounting.
  std::atomic<Request*> incoming_{nullptr};
  std::atomic<std::uint64_t> queued_pairs_{0};
  std::atomic<std::uint64_t> backlog_us_{0};
  std::atomic<bool> stopping_{false};

  // Coalescer sleep protocol (Dekker, as ThreadPool::enqueue): the
  // coalescer sets idle_ (seq_cst) *then* rechecks incoming_; producers
  // push (seq_cst CAS) *then* read idle_ — at least one side sees the
  // other, so no push is ever slept through.
  std::atomic<bool> idle_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  // block_when_full submitters wait here; flush() notifies on undo.
  std::mutex space_mutex_;
  std::condition_variable space_cv_;

  // Submits inside their stopping_ check → stack push window. stop() waits
  // for this to reach zero after raising stopping_, so no push can land
  // after its final sweep of the stack (which would strand a future).
  std::atomic<int> in_flight_submits_{0};
  std::mutex stop_mutex_;  // serializes concurrent stop() calls

  // Counters producers touch stay atomic (submit takes no mutex); the
  // flush-side aggregates and latency samples are mutex-guarded and
  // touched once per flush, not per request.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> max_backlog_us_{0};
  mutable std::mutex metrics_mutex_;
  std::uint64_t completed_ = 0;
  std::uint64_t flushes_full_ = 0;
  std::uint64_t flushes_linger_ = 0;
  std::uint64_t flushes_drain_ = 0;
  std::uint64_t dispatched_pairs_ = 0;
  double busy_seconds_ = 0.0;
  double modeled_seconds_ = 0.0;
  std::vector<double> queue_wait_samples_;
  std::vector<double> total_latency_samples_;
  /// Samples ever offered to each reservoir (both series see every request,
  /// so one counter serves both vectors).
  std::uint64_t latency_samples_seen_ = 0;
  /// Deterministic reservoir RNG: two services fed the same request sequence
  /// retain the same subsample (metrics_mutex_-guarded like the vectors).
  std::minstd_rand sample_rng_{20260809};

  /// Deadline-miss burn windows (constructed from config in the ctor; the
  /// internal mutexes make the class immovable, hence the indirection).
  std::unique_ptr<metrics::SloBurnWindow> slo_short_;
  std::unique_ptr<metrics::SloBurnWindow> slo_long_;
  std::atomic<bool> storm_dumped_{false};

  std::uint64_t next_batch_id_ = 0;  // coalescer-only
  std::thread coalescer_;
};

}  // namespace pimnw::core
