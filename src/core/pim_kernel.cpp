#include "core/pim_kernel.hpp"

#include <array>

namespace pimnw::core {

std::span<const PimKernel* const> registered_kernels() {
  static const std::array<const PimKernel*, 2> kKernels = {&nw_kernel(),
                                                          &wfa_kernel()};
  return kKernels;
}

const PimKernel* find_kernel(std::string_view name) {
  for (const PimKernel* kernel : registered_kernels()) {
    if (name == kernel->name()) return kernel;
  }
  return nullptr;
}

}  // namespace pimnw::core
