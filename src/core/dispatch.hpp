// Heterogeneous dispatch over AlignerBackends (ISSUE 4, DESIGN.md §11).
//
// The Dispatcher routes a batch of pairs across the registered backends,
// feeds them concurrently (host backends execute on the shared pool while
// the PiM simulation runs on the calling thread), and merges the outputs
// back in input order. Three routing policies:
//
//  * kSingle          — everything to one backend (the pre-ISSUE-4 world,
//                       now expressible per call instead of per call-site);
//  * kLengthThreshold — pairs whose longer sequence reaches a threshold go
//                       to the long-read backend, the rest to the short one;
//  * kCostModel       — per-pair cost minimisation on the paper's workload
//                       model W(m,n) = (m+n)·w (§4.1.2): each pair goes to
//                       the backend whose calibrated estimate for it is
//                       smallest. All backends share the host cores (the PiM
//                       simulator is host compute too), so total estimated
//                       work — not per-backend load balance — is what the
//                       wall-clock pays; calibrate() replaces the analytic
//                       throughput constants with measured ones.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/backend.hpp"

namespace pimnw::core {

enum class RoutePolicy { kSingle, kLengthThreshold, kCostModel };

const char* route_policy_name(RoutePolicy policy);
std::optional<RoutePolicy> parse_route_policy(std::string_view name);

struct DispatchConfig {
  RoutePolicy policy = RoutePolicy::kSingle;
  /// kSingle: the backend everything routes to.
  BackendKind single = BackendKind::kPim;
  /// kLengthThreshold: pairs with max(|a|, |b|) >= this go to long_backend.
  std::size_t length_threshold = 5000;
  BackendKind short_backend = BackendKind::kCpu;
  BackendKind long_backend = BackendKind::kPim;
};

/// Outcome of one Dispatcher::align call.
struct DispatchReport {
  RoutePolicy policy = RoutePolicy::kSingle;
  /// End-to-end wall-clock of the dispatch: routing + every backend's
  /// compute + the in-order merge. The only number the policies are
  /// compared on (modeled PiM time stays inside its BackendReport).
  double wall_seconds = 0.0;
  std::uint64_t total_pairs = 0;
  std::uint64_t aligned = 0;
  /// Pairs routed to each BackendKind (indexed by static_cast<int>(kind)).
  std::array<std::uint64_t, kBackendKinds> routed{};
  /// One report per registered backend (in registration order), including
  /// the ones that received no pairs this call.
  std::vector<BackendReport> backends;
};

void write_dispatch_json(std::ostream& out, const DispatchReport& report);

class Dispatcher {
 public:
  /// Backends are borrowed (caller keeps ownership) and must outlive the
  /// dispatcher. At most one backend per BackendKind.
  Dispatcher(DispatchConfig config, std::vector<AlignerBackend*> backends);

  const DispatchConfig& config() const { return config_; }

  /// The registered backend of `kind`, or nullptr.
  AlignerBackend* backend(BackendKind kind) const;

  /// Time a probe subset of `sample` on every backend and set each
  /// backend's cost_scale to measured/estimated, so kCostModel routes on
  /// observed throughput instead of the analytic constants. Cheap (a few
  /// pairs per backend); call once per workload shape.
  void calibrate(std::span<const PairInput> sample,
                 std::size_t max_probe_pairs = 4);

  /// Persist / restore calibrate()'s per-backend cost scales, so a service
  /// startup can skip the warm-up probes (--calibration-file on the benches
  /// and pimnw_serve). JSON shape:
  ///   { "cost_scale": { "pim": 1.23, "cpu": 0.98 } }
  void save_calibration(std::ostream& out) const;
  /// Returns false — leaving every scale untouched — when the stream lacks
  /// a positive entry for any registered backend.
  bool load_calibration(std::istream& in);
  void save_calibration_file(const std::string& path) const;
  /// False when the file is missing or invalid (caller falls back to
  /// calibrate()).
  bool load_calibration_file(const std::string& path);

  /// Smallest calibrated estimate across the registered backends for one
  /// (len_a, len_b) pair — the admission cost the streaming service's
  /// backpressure charges per queued pair (under kCostModel it is the work
  /// the pair will actually cost).
  double min_estimate_seconds(std::size_t len_a, std::size_t len_b) const;

  /// Route, execute, merge. `out` (when non-null) receives one PairOutput
  /// per input pair, in input order regardless of routing.
  DispatchReport align(std::span<const PairInput> pairs,
                       std::vector<PairOutput>* out);

 private:
  /// Backend index (into backends_) for each pair, per the policy.
  std::vector<std::size_t> route(std::span<const PairInput> pairs) const;
  std::size_t index_of(BackendKind kind) const;  // PIMNW_CHECKs presence

  DispatchConfig config_;
  std::vector<AlignerBackend*> backends_;
};

}  // namespace pimnw::core
