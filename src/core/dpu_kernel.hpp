// The DPU alignment kernel (paper §4.2) — the program every DPU runs.
//
// Structure mirrors the paper's kernel:
//  * P pools of T tasklets align P pairs concurrently (§4.2.3). Pairs are
//    pulled from the batch's work list by whichever pool frees up first.
//  * Score state is four anti-diagonal arrays of width w in WRAM (§4.2.1),
//    updated in place with carry registers (ascending-offset sweep).
//  * Sequences are read from MRAM through sliding 2-bit-packed WRAM windows
//    (§4.1.1), refilled by DMA as the band advances.
//  * Traceback state (4-bit BT rows + window origin per anti-diagonal) is
//    streamed to a per-pool MRAM scratch area (§4.2.2), then walked
//    backwards by the pool's master tasklet to emit a run-length CIGAR.
//
// The kernel's arithmetic, tie-breaking and window steering are identical to
// align::banded_adaptive — tests assert bit-identical scores and CIGARs.
// Timing comes from the instruction budgets in dpu_cost.hpp charged to the
// DPU cost model.
#pragma once

#include "core/dpu_cost.hpp"
#include "core/params.hpp"
#include "upmem/dpu.hpp"

namespace pimnw::core {

class NwDpuProgram : public upmem::DpuProgram {
 public:
  NwDpuProgram(PoolConfig pool_config, KernelVariant variant,
               SimPath sim_path = SimPath::kAuto)
      : pool_config_(pool_config),
        cost_(kernel_cost(variant)),
        sim_path_(sim_path) {}

  void run(upmem::DpuContext& ctx) override;

 private:
  PoolConfig pool_config_;
  KernelCost cost_;
  SimPath sim_path_;  // host execution strategy; never affects modeled cost
};

}  // namespace pimnw::core
