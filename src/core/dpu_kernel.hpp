// The DPU alignment kernel (paper §4.2) — the program every DPU runs.
//
// Structure mirrors the paper's kernel:
//  * P pools of T tasklets align P pairs concurrently (§4.2.3). Pairs are
//    pulled from the batch's work list by whichever pool frees up first.
//  * Score state is four anti-diagonal arrays of width w in WRAM (§4.2.1),
//    updated in place with carry registers (ascending-offset sweep).
//  * Sequences are read from MRAM through sliding 2-bit-packed WRAM windows
//    (§4.1.1), refilled by DMA as the band advances.
//  * Traceback state (4-bit BT rows + window origin per anti-diagonal) is
//    streamed to a per-pool MRAM scratch area (§4.2.2), then walked
//    backwards by the pool's master tasklet to emit a run-length CIGAR.
//
// The kernel's arithmetic, tie-breaking and window steering are identical to
// align::banded_adaptive — tests assert bit-identical scores and CIGARs.
// Timing comes from the instruction budgets in dpu_cost.hpp charged to the
// DPU cost model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dpu_cost.hpp"
#include "core/params.hpp"
#include "core/pim_kernel.hpp"
#include "upmem/dpu.hpp"

namespace pimnw::core {

/// Host-side fast-path scratch (the padded band snapshots and bulk-decoded
/// base/BT byte arrays of DESIGN.md "Simulator fast path"). It models no DPU
/// state, so one instance can be shared by every pool of a launch (pairs
/// align strictly one at a time) and reused across launches — the execution
/// engine keeps one per worker thread instead of reallocating ~7 vectors per
/// DPU launch. Safe to reuse because the sweep rewrites every interior slot
/// it reads each anti-diagonal; only the kNegInf pads persist, and prepare()
/// re-asserts them.
struct KernelScratch {
  std::vector<align::Score> snap_hp;
  std::vector<align::Score> snap_h2;
  std::vector<align::Score> snap_ip;
  std::vector<align::Score> snap_dp;
  std::vector<std::uint8_t> base_a;
  std::vector<std::uint8_t> base_b;
  std::vector<std::uint8_t> codes;

  /// Size for `band_width` and (re-)install the out-of-band pads.
  void prepare(std::int64_t band_width);
};

class NwDpuProgram : public upmem::DpuProgram {
 public:
  /// `scratch` may be nullptr (the program then keeps a private arena) or a
  /// caller-owned KernelScratch that must outlive the launch and must not be
  /// shared with a concurrently running program. `bt_stream_passes` models
  /// each BT row crossing the MRAM port that many times (profiling stress
  /// knob, PimAlignerConfig::bt_stream_passes); 1 is the paper's kernel.
  NwDpuProgram(PoolConfig pool_config, KernelVariant variant,
               SimPath sim_path = SimPath::kAuto,
               KernelScratch* scratch = nullptr, int bt_stream_passes = 1)
      : pool_config_(pool_config),
        cost_(kernel_cost(variant)),
        sim_path_(sim_path),
        scratch_(scratch),
        bt_stream_passes_(bt_stream_passes) {}

  void run(upmem::DpuContext& ctx) override;

 private:
  PoolConfig pool_config_;
  KernelCost cost_;
  SimPath sim_path_;  // host execution strategy; never affects modeled cost
  KernelScratch* scratch_;  // optional shared arena (not owned)
  int bt_stream_passes_;    // modeled BT streaming passes (>= 1)
};

/// PimKernel registrant for the banded-NW kernel: the image geometry, flag
/// bits and program construction the engine/layout used to hardcode, now
/// behind the algorithm-agnostic interface (DESIGN.md §16). Every number it
/// reports is byte-identical to the pre-refactor inline arithmetic.
class NwKernel final : public PimKernel {
 public:
  const char* name() const override { return "nw"; }
  const char* description() const override;

  std::uint32_t batch_flags(const AlignConfig& config) const override;
  std::uint32_t pair_cigar_cap(std::uint64_t len_a, std::uint64_t len_b,
                               const AlignConfig& config) const override;
  std::uint64_t pair_scratch_bytes(std::uint64_t len_a, std::uint64_t len_b,
                                   const AlignConfig& config) const override;

  std::unique_ptr<KernelWorkspace> make_workspace() const override;
  std::unique_ptr<upmem::DpuProgram> make_program(
      const PimAlignerConfig& config, KernelWorkspace* workspace) const override;

  std::span<const KernelPhase> phase_table() const override;

  align::AlignResult host_reference(std::string_view a, std::string_view b,
                                    const AlignConfig& config) const override;
};

}  // namespace pimnw::core
