// Workload estimation and distribution (paper §4.1.2).
//
// The workload of aligning sequences of lengths m and n inside a band of
// width w is W(m,n) = (m+n)·w (the banded DP's cell count). Pairs are
// dispatched to the 64 DPUs of a rank with the classic LPT heuristic: sort
// by decreasing workload, repeatedly give the heaviest remaining pair to the
// least-loaded DPU. LPT guarantees makespan <= (4/3 - 1/3k)·OPT and is cheap
// enough to run per batch.
#pragma once

#include <cstdint>
#include <vector>

namespace pimnw::core {

struct WorkItem {
  std::uint32_t id = 0;        // caller-defined (pair index, set index, ...)
  std::uint64_t workload = 0;  // W(m,n) or any additive cost estimate
};

/// Paper equation (6).
inline std::uint64_t pair_workload(std::uint64_t m, std::uint64_t n,
                                   std::uint64_t band_width) {
  return (m + n) * band_width;
}

struct Assignment {
  /// bins[b] = items assigned to bin b (DPU b), in assignment order.
  std::vector<std::vector<WorkItem>> bins;
  /// Cumulative workload per bin.
  std::vector<std::uint64_t> bin_load;

  std::uint64_t max_load() const;
  std::uint64_t min_nonempty_load() const;
  /// max_load / mean_load over non-empty bins — 1.0 is perfect balance.
  double imbalance() const;
};

/// LPT assignment of `items` into `bins` bins.
Assignment lpt_assign(std::vector<WorkItem> items, int bins);

/// Contiguous static split of `count` items into `bins` near-equal ranges
/// (the 16S broadcast mode's "simple static assignment", §5.3). Returns
/// [first, last) index per bin.
std::vector<std::pair<std::uint64_t, std::uint64_t>> static_split(
    std::uint64_t count, int bins);

}  // namespace pimnw::core
