// Per-run execution statistics (ISSUE 3, DESIGN.md "Observability").
//
// StatsCollector is a passive observer the execution engine feeds from its
// sequenced commit stage: one LaunchRecord per rank-batch (timeline
// placement + cycle aggregates), streaming per-DPU cycle min/mean/max,
// banded-cell totals for GCUPS, work-stealing counters from the thread pool
// and prefetch hit/miss counts. It never participates in the RunReport
// arithmetic, so modeled outputs are bit-identical whether or not a
// collector (or tracing) is attached — engine_test pins this.
//
// When tracing is enabled (util/trace.hpp) the collector also reconstructs
// the *modeled PiM timeline* as trace spans: a lane per rank (transfer /
// launch / readback) and a lane per DPU whose spans carry the modeled cycle
// counts, converted to seconds at upmem::kDpuFrequencyHz. Summing the
// per-DPU span cycles therefore reproduces the LaunchStats aggregates
// exactly (trace_test and engine_test assert this).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "upmem/cost_model.hpp"
#include "upmem/rank.hpp"

namespace pimnw::core {

struct RunReport;

/// One rank-batch launch as the commit stage placed it on the modeled
/// timeline.
struct LaunchRecord {
  std::uint64_t batch = 0;
  int rank = 0;
  double start_seconds = 0.0;       // max(prep ready, rank free)
  double exec_start_seconds = 0.0;  // after in-transfer + launch overhead
  double exec_end_seconds = 0.0;
  double end_seconds = 0.0;         // after the readback transfer
  std::uint64_t max_cycles = 0;     // == LaunchStats.max_cycles
  std::uint64_t sum_dpu_cycles = 0; // Σ cycles over the launched DPUs
  int active_dpus = 0;
  // Profiler view (zero unless the engine passed per-DPU phase profiles).
  // attributed_cycles == sum_dpu_cycles whenever profiles were attached —
  // the reconciliation invariant, pinned by profiler_test.
  std::uint64_t attributed_cycles = 0;
  upmem::Bottleneck bottleneck = upmem::Bottleneck::kPipeline;
  /// Launched DPUs whose verdict was pipeline/MRAM/reentry-bound, indexed by
  /// static_cast<int>(Bottleneck).
  std::array<int, 3> verdict_dpus{};
};

class StatsCollector {
 public:
  /// Record one committed launch; emits modeled-timeline trace spans when
  /// tracing is enabled. `start` is the batch's timeline start,
  /// `in_seconds`/`overhead_seconds`/`out_seconds` the transfer-in, launch
  /// overhead and readback legs; execution duration comes from `agg`.
  /// `profiles`, when non-null, carries the per-DPU phase attribution of the
  /// launch (slots of DPUs that did not run are ignored); the collector then
  /// aggregates a run-wide DpuPhaseProfile, records per-launch bottleneck
  /// verdicts, and — when tracing is on — tiles each modeled DPU span with
  /// phase sub-spans and emits utilisation counter tracks.
  void on_launch(
      std::uint64_t batch, int rank, double start, double in_seconds,
      double overhead_seconds, double out_seconds,
      const std::array<upmem::DpuCostModel::Summary, upmem::kDpusPerRank>&
          summaries,
      const std::array<bool, upmem::kDpusPerRank>& ran,
      const upmem::Rank::LaunchStats& agg,
      const std::array<upmem::DpuPhaseProfile, upmem::kDpusPerRank>*
          profiles = nullptr);

  /// Record a broadcast (the all-vs-all pool / session database upload;
  /// delays every rank equally). Counted separately from per-batch launch
  /// traffic so amortization across session rounds is visible.
  void on_broadcast(double seconds, std::uint64_t bytes, int nr_ranks);

  std::uint64_t broadcasts() const { return broadcasts_; }
  std::uint64_t broadcast_bytes() const { return broadcast_bytes_; }
  double broadcast_seconds() const { return broadcast_seconds_; }

  /// Banded DP cells of a committed batch (Σ pair_workload) — GCUPS input.
  void add_cells(std::uint64_t cells);

  void note_prefetch(std::uint64_t hits, std::uint64_t misses);

  /// Thread-pool counter deltas over the observed run.
  void note_pool(std::uint64_t executed, std::uint64_t stolen,
                 std::uint64_t injected);

  const std::vector<LaunchRecord>& launches() const { return launches_; }
  std::uint64_t total_cells() const { return cells_; }
  std::uint64_t dpu_count() const { return dpu_count_; }
  std::uint64_t dpu_cycles_min() const { return dpu_count_ ? cycles_min_ : 0; }
  std::uint64_t dpu_cycles_max() const { return cycles_max_; }
  double dpu_cycles_mean() const {
    return dpu_count_ ? static_cast<double>(cycles_sum_) /
                            static_cast<double>(dpu_count_)
                      : 0.0;
  }
  /// Run-wide phase profile: the merge of every launched DPU's
  /// DpuPhaseProfile (empty/has_profile()==false when the engine never
  /// attached profiles).
  bool has_profile() const { return has_profile_; }
  const upmem::DpuPhaseProfile& profile() const { return profile_; }
  /// DPU launches per bottleneck verdict, indexed by
  /// static_cast<int>(Bottleneck).
  const std::array<std::uint64_t, 3>& verdict_dpus() const {
    return verdict_dpus_;
  }

  /// Params snapshot (core::params_json) stamped into the report's
  /// provenance block; the engine sets it at construction.
  void set_params(std::string params_json) { params_ = std::move(params_json); }
  const std::string& params() const { return params_; }

  std::uint64_t prefetch_hits() const { return prefetch_hits_; }
  std::uint64_t prefetch_misses() const { return prefetch_misses_; }
  std::uint64_t pool_executed() const { return pool_executed_; }
  std::uint64_t pool_stolen() const { return pool_stolen_; }
  std::uint64_t pool_injected() const { return pool_injected_; }

  /// The per-run report: RunReport numbers plus derived throughput
  /// (pairs/s, GCUPS), the per-DPU cycle distribution, and the engine
  /// counters, as JSON.
  void write_json(std::ostream& out, const RunReport& report) const;
  bool write_json_file(const std::string& path,
                       const RunReport& report) const;

 private:
  /// Modeled-lane tid allocation: rank r owns a contiguous block of
  /// kDpusPerRank + 1 tids starting at lane_base(r); the first is the rank
  /// lane, the rest the per-DPU lanes.
  static std::uint32_t lane_base(int rank);
  void name_rank_lanes(int rank);

  std::vector<LaunchRecord> launches_;
  std::vector<bool> rank_lanes_named_;
  upmem::DpuPhaseProfile profile_;
  bool has_profile_ = false;
  std::array<std::uint64_t, 3> verdict_dpus_{};
  std::string params_;
  std::uint64_t cells_ = 0;
  std::uint64_t broadcasts_ = 0;
  std::uint64_t broadcast_bytes_ = 0;
  double broadcast_seconds_ = 0.0;
  std::uint64_t cycles_min_ = ~std::uint64_t{0};
  std::uint64_t cycles_max_ = 0;
  std::uint64_t cycles_sum_ = 0;
  std::uint64_t dpu_count_ = 0;
  std::uint64_t prefetch_hits_ = 0;
  std::uint64_t prefetch_misses_ = 0;
  std::uint64_t pool_executed_ = 0;
  std::uint64_t pool_stolen_ = 0;
  std::uint64_t pool_injected_ = 0;
};

}  // namespace pimnw::core
