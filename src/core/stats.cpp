#include "core/stats.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>

#include "core/host.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/provenance.hpp"
#include "util/trace.hpp"

namespace pimnw::core {
namespace {

constexpr double kSecondsToUs = 1e6;

// Prometheus series for the modeled device (DESIGN.md §17). Every engine run
// feeds a StatsCollector (engine-owned when the caller attached none), so
// this is the single choke point for launch-granular counters. Pure
// observers: nothing here feeds back into the modeled arithmetic.
struct LaunchSeries {
  metrics::Counter& launches;
  metrics::Counter& dpu_cycles;
  metrics::Counter& active_dpus;
  metrics::Counter& broadcasts;
  metrics::Counter& broadcast_bytes;
};

LaunchSeries& launch_series() {
  auto& reg = metrics::MetricsRegistry::global();
  static LaunchSeries series{
      reg.counter("pimnw_engine_launches_total",
                  "Rank launches committed on the modeled device"),
      reg.counter("pimnw_engine_dpu_cycles_total",
                  "Modeled DPU cycles summed over all launched DPUs"),
      reg.counter("pimnw_engine_active_dpus_total",
                  "DPUs that ran at least one pair, summed over launches"),
      reg.counter("pimnw_upmem_broadcasts_total",
                  "Broadcast transfers to every bank"),
      reg.counter("pimnw_upmem_broadcast_bytes_total",
                  "Bytes moved by broadcast transfers"),
  };
  return series;
}

}  // namespace

std::uint32_t StatsCollector::lane_base(int rank) {
  return 1 + static_cast<std::uint32_t>(rank) *
                 static_cast<std::uint32_t>(upmem::kDpusPerRank + 1);
}

void StatsCollector::name_rank_lanes(int rank) {
  if (static_cast<std::size_t>(rank) >= rank_lanes_named_.size()) {
    rank_lanes_named_.resize(static_cast<std::size_t>(rank) + 1, false);
  }
  if (rank_lanes_named_[static_cast<std::size_t>(rank)]) return;
  rank_lanes_named_[static_cast<std::size_t>(rank)] = true;
  const std::uint32_t base = lane_base(rank);
  trace::set_modeled_lane_name(base, "rank " + std::to_string(rank));
  for (int d = 0; d < upmem::kDpusPerRank; ++d) {
    trace::set_modeled_lane_name(
        base + 1 + static_cast<std::uint32_t>(d),
        "rank " + std::to_string(rank) + " dpu " + std::to_string(d));
  }
}

void StatsCollector::on_launch(
    std::uint64_t batch, int rank, double start, double in_seconds,
    double overhead_seconds, double out_seconds,
    const std::array<upmem::DpuCostModel::Summary, upmem::kDpusPerRank>&
        summaries,
    const std::array<bool, upmem::kDpusPerRank>& ran,
    const upmem::Rank::LaunchStats& agg,
    const std::array<upmem::DpuPhaseProfile, upmem::kDpusPerRank>* profiles) {
  LaunchRecord record;
  record.batch = batch;
  record.rank = rank;
  record.start_seconds = start;
  record.exec_start_seconds = start + in_seconds + overhead_seconds;
  record.exec_end_seconds = record.exec_start_seconds + agg.seconds;
  record.end_seconds = record.exec_end_seconds + out_seconds;
  record.max_cycles = agg.max_cycles;
  record.active_dpus = agg.active_dpus;
  for (int d = 0; d < upmem::kDpusPerRank; ++d) {
    if (!ran[static_cast<std::size_t>(d)]) continue;
    const auto& summary = summaries[static_cast<std::size_t>(d)];
    record.sum_dpu_cycles += summary.cycles;
    cycles_min_ = std::min(cycles_min_, summary.cycles);
    cycles_max_ = std::max(cycles_max_, summary.cycles);
    cycles_sum_ += summary.cycles;
    ++dpu_count_;
  }

  upmem::DpuPhaseProfile launch_prof;
  if (profiles != nullptr) {
    for (int d = 0; d < upmem::kDpusPerRank; ++d) {
      if (!ran[static_cast<std::size_t>(d)]) continue;
      const auto& prof = (*profiles)[static_cast<std::size_t>(d)];
      record.attributed_cycles += prof.attributed_cycles();
      ++record.verdict_dpus[static_cast<std::size_t>(prof.bottleneck)];
      ++verdict_dpus_[static_cast<std::size_t>(prof.bottleneck)];
      launch_prof.merge(prof);
    }
    record.bottleneck = launch_prof.bottleneck;
    profile_.merge(launch_prof);
    has_profile_ = true;
  }
  launches_.push_back(record);

  if (metrics::enabled()) {
    LaunchSeries& series = launch_series();
    series.launches.add(1);
    series.dpu_cycles.add(record.sum_dpu_cycles);
    series.active_dpus.add(static_cast<std::uint64_t>(agg.active_dpus));
  }

  if (trace::enabled()) {
    name_rank_lanes(rank);
    const std::uint32_t base = lane_base(rank);
    const std::string b = "b" + std::to_string(batch);
    if (in_seconds > 0) {
      trace::modeled_span("xfer in " + b, base, start * kSecondsToUs,
                          in_seconds * kSecondsToUs);
    }
    trace::modeled_span(
        "launch " + b, base, (start + in_seconds) * kSecondsToUs,
        (overhead_seconds + agg.seconds) * kSecondsToUs, agg.max_cycles);
    if (out_seconds > 0) {
      trace::modeled_span("xfer out " + b, base,
                          record.exec_end_seconds * kSecondsToUs,
                          out_seconds * kSecondsToUs);
    }
    for (int d = 0; d < upmem::kDpusPerRank; ++d) {
      if (!ran[static_cast<std::size_t>(d)]) continue;
      const auto& summary = summaries[static_cast<std::size_t>(d)];
      const std::uint32_t lane = base + 1 + static_cast<std::uint32_t>(d);
      trace::modeled_span(b + " d" + std::to_string(d), lane,
                          record.exec_start_seconds * kSecondsToUs,
                          summary.seconds * kSecondsToUs, summary.cycles);
      if (profiles == nullptr) continue;
      // Tile the DPU span with its phase attribution: back-to-back sub-spans
      // whose cycles sum exactly to the parent's (the invariant again, now
      // visible in Perfetto).
      const auto& prof = (*profiles)[static_cast<std::size_t>(d)];
      double cursor = record.exec_start_seconds * kSecondsToUs;
      const double us_per_cycle = kSecondsToUs / upmem::kDpuFrequencyHz;
      for (int ph = 0; ph < upmem::kPhaseCount; ++ph) {
        const std::uint64_t cyc =
            prof.phase_cycles(static_cast<upmem::Phase>(ph));
        if (cyc == 0) continue;
        const double dur = static_cast<double>(cyc) * us_per_cycle;
        trace::modeled_span(phase_name(static_cast<upmem::Phase>(ph)), lane,
                            cursor, dur, cyc);
        cursor += dur;
      }
      if (prof.reentry_stall_cycles > 0) {
        trace::modeled_span(
            "reentry stall", lane, cursor,
            static_cast<double>(prof.reentry_stall_cycles) * us_per_cycle,
            prof.reentry_stall_cycles);
      }
    }
    if (profiles != nullptr && launch_prof.cycles > 0) {
      // Launch-level counter tracks (tid 0 of the modeled process).
      const double total = static_cast<double>(launch_prof.cycles);
      trace::modeled_counter(
          "modeled pipeline util %", record.exec_start_seconds * kSecondsToUs,
          100.0 * static_cast<double>(launch_prof.total_issue_cycles()) /
              total);
      trace::modeled_counter(
          "modeled MRAM stall %", record.exec_start_seconds * kSecondsToUs,
          100.0 * static_cast<double>(launch_prof.total_dma_stall_cycles()) /
              total);
    }
  }
}

void StatsCollector::on_broadcast(double seconds, std::uint64_t bytes,
                                  int nr_ranks) {
  // The counters are recorded whether or not tracing is on — the JSON
  // report's broadcast attribution must not depend on a trace sink.
  ++broadcasts_;
  broadcast_bytes_ += bytes;
  broadcast_seconds_ += seconds;
  if (metrics::enabled()) {
    LaunchSeries& series = launch_series();
    series.broadcasts.add(1);
    series.broadcast_bytes.add(bytes);
  }
  if (!trace::enabled()) return;
  for (int r = 0; r < nr_ranks; ++r) {
    name_rank_lanes(r);
    trace::modeled_span(
        "broadcast " + std::to_string(bytes) + " B", lane_base(r), 0.0,
        seconds * kSecondsToUs);
  }
}

void StatsCollector::add_cells(std::uint64_t cells) { cells_ += cells; }

void StatsCollector::note_prefetch(std::uint64_t hits, std::uint64_t misses) {
  prefetch_hits_ += hits;
  prefetch_misses_ += misses;
}

void StatsCollector::note_pool(std::uint64_t executed, std::uint64_t stolen,
                               std::uint64_t injected) {
  pool_executed_ += executed;
  pool_stolen_ += stolen;
  pool_injected_ += injected;
}

void StatsCollector::write_json(std::ostream& out,
                                const RunReport& report) const {
  out.precision(std::numeric_limits<double>::max_digits10);
  const double makespan = report.makespan_seconds;
  const double pairs_per_second =
      makespan > 0 ? static_cast<double>(report.total_pairs) / makespan : 0.0;
  const double gcups =
      makespan > 0 ? static_cast<double>(cells_) / makespan / 1e9 : 0.0;
  out << "{\n";
  out << "  \"total_pairs\": " << report.total_pairs << ",\n";
  out << "  \"batches\": " << report.batches << ",\n";
  out << "  \"launches\": " << launches_.size() << ",\n";
  out << "  \"makespan_seconds\": " << makespan << ",\n";
  out << "  \"pairs_per_second\": " << pairs_per_second << ",\n";
  out << "  \"banded_cells\": " << cells_ << ",\n";
  out << "  \"gcups\": " << gcups << ",\n";
  out << "  \"host_prep_seconds\": " << report.host_prep_seconds << ",\n";
  out << "  \"transfer_seconds\": " << report.transfer_seconds << ",\n";
  out << "  \"host_overhead_fraction\": " << report.host_overhead_fraction
      << ",\n";
  out << "  \"load_imbalance\": " << report.load_imbalance << ",\n";
  out << "  \"mean_pipeline_utilization\": "
      << report.mean_pipeline_utilization << ",\n";
  out << "  \"mean_mram_overhead\": " << report.mean_mram_overhead << ",\n";
  out << "  \"dpu_launches\": " << dpu_count_ << ",\n";
  out << "  \"dpu_cycles\": { \"min\": " << dpu_cycles_min()
      << ", \"mean\": " << dpu_cycles_mean()
      << ", \"max\": " << dpu_cycles_max() << " },\n";
  out << "  \"pool\": { \"tasks_executed\": " << pool_executed_
      << ", \"tasks_stolen\": " << pool_stolen_
      << ", \"tasks_injected\": " << pool_injected_ << " },\n";
  out << "  \"prefetch\": { \"hits\": " << prefetch_hits_
      << ", \"misses\": " << prefetch_misses_ << " },\n";
  out << "  \"bytes_to_dpus\": " << report.bytes_to_dpus << ",\n";
  out << "  \"broadcast\": { \"count\": " << broadcasts_
      << ", \"bytes\": " << broadcast_bytes_
      << ", \"seconds\": " << broadcast_seconds_ << " },\n";
  out << "  \"bytes_to_dpus_marginal\": "
      << report.bytes_to_dpus - report.bytes_broadcast << ",\n";
  out << "  \"bytes_from_dpus\": " << report.bytes_from_dpus << ",\n";
  out << "  \"total_instructions\": " << report.total_instructions << ",\n";
  out << "  \"total_dma_bytes\": " << report.total_dma_bytes << ",\n";
  if (has_profile_) {
    out << "  \"profile\": {\n";
    out << "    \"cycles\": " << profile_.cycles << ",\n";
    out << "    \"attributed_cycles\": " << profile_.attributed_cycles()
        << ",\n";
    out << "    \"phases\": {\n";
    for (int ph = 0; ph < upmem::kPhaseCount; ++ph) {
      const auto i = static_cast<std::size_t>(ph);
      out << "      \"" << upmem::phase_name(static_cast<upmem::Phase>(ph))
          << "\": { \"issue_cycles\": " << profile_.issue_cycles[i]
          << ", \"dma_stall_cycles\": " << profile_.dma_stall_cycles[i]
          << ", \"dma_bytes\": " << profile_.dma_bytes[i] << " }"
          << (ph + 1 < upmem::kPhaseCount ? "," : "") << "\n";
    }
    out << "    },\n";
    out << "    \"reentry_stall_cycles\": " << profile_.reentry_stall_cycles
        << ",\n";
    out << "    \"mram_contention_cycles\": "
        << profile_.mram_contention_cycles << ",\n";
    out << "    \"stall_fraction\": " << profile_.stall_fraction() << ",\n";
    out << "    \"bottleneck\": \""
        << upmem::bottleneck_name(profile_.bottleneck) << "\",\n";
    out << "    \"verdict_dpus\": { \"pipeline\": " << verdict_dpus_[0]
        << ", \"mram\": " << verdict_dpus_[1]
        << ", \"reentry\": " << verdict_dpus_[2] << " },\n";
    out << "    \"dma_hist\": [";
    for (int b = 0; b < upmem::kDmaHistBuckets; ++b) {
      out << (b > 0 ? ", " : "")
          << profile_.dma_hist[static_cast<std::size_t>(b)];
    }
    out << "],\n";
    out << "    \"tasklet_instr\": [";
    const int slots = std::min(profile_.active_tasklets, upmem::kMaxTasklets);
    for (int t = 0; t < slots; ++t) {
      out << (t > 0 ? ", " : "")
          << profile_.tasklet_instr[static_cast<std::size_t>(t)];
    }
    out << "]\n";
    out << "  },\n";
  }
  out << "  \"provenance\": " << provenance_json(params_) << "\n";
  out << "}\n";
}

bool StatsCollector::write_json_file(const std::string& path,
                                     const RunReport& report) const {
  std::ofstream out(path);
  if (!out) {
    PIMNW_WARN("stats: cannot open " << path << " for writing");
    return false;
  }
  write_json(out, report);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace pimnw::core
