// AVX2 fast-path kernel: 8 band cells per step. Only this TU is compiled
// with -mavx2 (see src/core/CMakeLists.txt); callers reach it through the
// avx2_available() runtime dispatch, so binaries stay runnable on CPUs
// without AVX2.
//
// The H/I/D recurrence maps directly onto epi32 lanes because cells on one
// anti-diagonal have no mutual dependencies — the same property the paper's
// tasklets exploit (§4.2.3), and its cmpb4 instruction is the byte-compare
// analog of the _mm256_cmpeq_epi32 below.
#include "core/kernel_simd.hpp"

#if defined(PIMNW_HAVE_AVX2)

#include <immintrin.h>

namespace pimnw::core::simd {
namespace {

inline __m256i load(const align::Score* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store(align::Score* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// Widen 8 base codes (bytes) to epi32 lanes.
inline __m256i load_bases(const std::uint8_t* p) {
  return _mm256_cvtepu8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}

template <bool kTraceback>
void avx2_sweep(const DiagSpan& d) {
  const __m256i v_gext = _mm256_set1_epi32(d.gap_extend);
  const __m256i v_open = _mm256_set1_epi32(d.open_ext);
  const __m256i v_match = _mm256_set1_epi32(d.match);
  const __m256i v_mismatch = _mm256_set1_epi32(-d.mismatch);

  std::int64_t t = 0;
  for (; t + 8 <= d.len; t += 8) {
    // I: vertical gap, extend vs open from the cell above.
    const __m256i i_opn = _mm256_sub_epi32(load(d.up_h + t), v_open);
    const __m256i i_ext = _mm256_sub_epi32(load(d.up_i + t), v_gext);
    const __m256i new_i = _mm256_max_epi32(i_opn, i_ext);

    // D: horizontal gap, extend vs open from the cell to the left.
    const __m256i d_opn = _mm256_sub_epi32(load(d.left_h + t), v_open);
    const __m256i d_ext = _mm256_sub_epi32(load(d.left_d + t), v_gext);
    const __m256i new_d = _mm256_max_epi32(d_opn, d_ext);

    // H: diagonal step with the dense base compare (cmpb4 analog).
    const __m256i eq =
        _mm256_cmpeq_epi32(load_bases(d.base_a + t), load_bases(d.base_b + t));
    const __m256i sub = _mm256_blendv_epi8(v_mismatch, v_match, eq);
    const __m256i h_diag = _mm256_add_epi32(load(d.diag_h + t), sub);

    const __m256i gap_best = _mm256_max_epi32(new_i, new_d);
    const __m256i h = _mm256_max_epi32(h_diag, gap_best);

    store(d.out_h + t, h);
    store(d.out_i + t, new_i);
    store(d.out_d + t, new_d);

    if constexpr (kTraceback) {
      // Origin, matching the scalar tie-breaks exactly:
      //   diag wins on >=; between gaps, I wins on >=.
      const __m256i gap_wins = _mm256_cmpgt_epi32(gap_best, h_diag);
      const __m256i d_wins = _mm256_cmpgt_epi32(new_d, new_i);
      // Gap origin: kOriginI (2) or kOriginD (3); d_wins lanes are -1.
      const __m256i gap_origin =
          _mm256_sub_epi32(_mm256_set1_epi32(2), d_wins);
      // Diagonal origin: kOriginDiagMatch (0) or kOriginDiagMismatch (1).
      const __m256i diag_origin =
          _mm256_andnot_si256(eq, _mm256_set1_epi32(1));
      const __m256i origin =
          _mm256_blendv_epi8(diag_origin, gap_origin, gap_wins);
      // Open bits: open on >= (i.e. unless extension is strictly better).
      const __m256i i_open_bit = _mm256_andnot_si256(
          _mm256_cmpgt_epi32(i_ext, i_opn), _mm256_set1_epi32(4));
      const __m256i d_open_bit = _mm256_andnot_si256(
          _mm256_cmpgt_epi32(d_ext, d_opn), _mm256_set1_epi32(8));
      const __m256i code =
          _mm256_or_si256(origin, _mm256_or_si256(i_open_bit, d_open_bit));
      // Narrow the 8 epi32 codes to 8 bytes (low byte of each lane).
      const __m256i shuffled = _mm256_shuffle_epi8(
          code, _mm256_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1,
                                 -1, -1, -1, -1, 0, 4, 8, 12, -1, -1, -1, -1,
                                 -1, -1, -1, -1, -1, -1, -1, -1));
      const std::uint32_t lo = static_cast<std::uint32_t>(
          _mm256_extract_epi32(shuffled, 0));
      const std::uint32_t hi = static_cast<std::uint32_t>(
          _mm256_extract_epi32(shuffled, 4));
      std::uint8_t* out = d.codes + t;
      __builtin_memcpy(out, &lo, 4);
      __builtin_memcpy(out + 4, &hi, 4);
    }
  }

  if (t < d.len) {
    // Remainder lanes: run the dense reference over the tail.
    DiagSpan tail = d;
    tail.up_h += t;
    tail.up_i += t;
    tail.left_h += t;
    tail.left_d += t;
    tail.diag_h += t;
    tail.base_a += t;
    tail.base_b += t;
    tail.out_h += t;
    tail.out_i += t;
    tail.out_d += t;
    if (tail.codes != nullptr) tail.codes += t;
    tail.len = d.len - t;
    diag_update_dense(tail);
  }
}

}  // namespace

void diag_update_avx2(const DiagSpan& d) {
  if (d.codes != nullptr) {
    avx2_sweep<true>(d);
  } else {
    avx2_sweep<false>(d);
  }
}

}  // namespace pimnw::core::simd

#endif  // PIMNW_HAVE_AVX2
