// PiM-WFA: the gap-affine wavefront kernel (DESIGN.md §16) — the second
// PimKernel registrant, algorithmically unrelated to banded NW.
//
// Structure on the DPU:
//  * Both 2-bit-packed sequences stay WRAM-resident for the whole pair
//    (kWfaMaxSeqBases caps each side at one 2048 B buffer per pool).
//  * Wavefronts (M/I/D furthest-reaching offsets per diagonal) live in the
//    per-pool MRAM scratch area as fixed-stride slots, one slot per cost
//    step: traceback keeps every step for the backtrace walk; score-only
//    recycles a `depth` (= max penalty + 1) slot ring.
//  * Each cost step streams its source rows MRAM→WRAM and its three output
//    rows WRAM→MRAM in kDmaMaxBytes-bounded chunks; the recurrence itself
//    runs on WRAM chunk buffers, split across the pool's tasklets.
//  * The backtrace walks the retained slots with small 8-byte probes and
//    emits the CIGAR through the same staged-run machinery as the NW kernel.
//
// The recurrence, tie-breaking, bounds arithmetic and backtrace source
// disambiguation are identical to align::wfa_align — tests assert
// bit-identical scores and CIGARs, including the nullopt ↔ kStatusUnreachable
// correspondence under AlignConfig::wfa_max_cost. Timing comes from the
// WfaKernelCost budgets charged to the same pool cost model as NW.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "align/scoring.hpp"
#include "core/params.hpp"
#include "core/pim_kernel.hpp"
#include "upmem/dpu.hpp"

namespace pimnw::core {

/// Hard per-side length cap: one fully-resident packed sequence buffer per
/// pool is 2048 bytes = 8192 bases. Longer pairs are rejected by
/// pair_admissible (PairStatus::kOversized), the same contract as an NW pair
/// whose lone-pair MRAM footprint exceeds the bank.
inline constexpr std::uint64_t kWfaMaxSeqBases = 8192;

/// The score-model-to-cost-model conversion (Eizenga & Paten 2022), shared
/// by the planner and the DPU program so their geometry always agrees:
///   x = 2(a+b), open = 2o + (2e+a), ext = 2e + a.
/// `depth` = max penalty + 1 is the score-only wavefront ring size.
struct WfaPenalties {
  std::int64_t x;
  std::int64_t open;
  std::int64_t ext;
  std::uint64_t depth;
};

/// Derive the WFA penalties; throws CheckError when the scoring does not
/// convert to positive penalties (same contract as align::wfa_align).
WfaPenalties wfa_penalties(const align::Scoring& scoring);

/// Monotone upper bound on the optimal alignment cost of a (len_a, len_b)
/// pair: the trivial alignment of min(m,n) mismatch columns plus one gap,
/// over-charged to open + d·ext so the bound is non-decreasing in each
/// length (the exact trivial cost dips by open−x−ext when a gap closes,
/// which would break the pair_scratch_bytes monotonicity contract).
std::uint64_t wfa_worst_cost(std::uint64_t len_a, std::uint64_t len_b,
                             const align::Scoring& scoring);

/// The per-pair cost budget that sizes the MRAM slot geometry:
/// min(config.wfa_max_cost, wfa_worst_cost), with wfa_max_cost == 0 meaning
/// unbounded (the worst-cost bound alone guarantees termination).
std::uint64_t wfa_cost_cap(std::uint64_t len_a, std::uint64_t len_b,
                           const AlignConfig& config);

/// The DPU program: runs the exact WFA recurrence against the simulated
/// MRAM/WRAM/cost-model machinery. `wfa_max_cost` is carried host-side (it
/// is planning state, not batch state — the BatchHeader stays byte-identical
/// to NW batches).
class WfaDpuProgram final : public upmem::DpuProgram {
 public:
  WfaDpuProgram(PoolConfig pool_config, KernelVariant variant,
                std::uint64_t wfa_max_cost);

  void run(upmem::DpuContext& ctx) override;

 private:
  PoolConfig pool_config_;
  KernelVariant variant_;
  std::uint64_t wfa_max_cost_;
};

/// PimKernel registrant for PiM-WFA (reach it via wfa_kernel() or
/// find_kernel("wfa")).
class WfaKernel final : public PimKernel {
 public:
  const char* name() const override { return "wfa"; }
  const char* description() const override;

  std::uint32_t batch_flags(const AlignConfig& config) const override;
  std::uint32_t pair_cigar_cap(std::uint64_t len_a, std::uint64_t len_b,
                               const AlignConfig& config) const override;
  std::uint64_t pair_scratch_bytes(std::uint64_t len_a, std::uint64_t len_b,
                                   const AlignConfig& config) const override;

  bool pair_admissible(std::uint64_t len_a, std::uint64_t len_b,
                       const AlignConfig& config,
                       const PoolConfig& pools) const override;

  std::unique_ptr<upmem::DpuProgram> make_program(
      const PimAlignerConfig& config,
      KernelWorkspace* workspace) const override;

  std::span<const KernelPhase> phase_table() const override;

  align::AlignResult host_reference(std::string_view a, std::string_view b,
                                    const AlignConfig& config) const override;
};

}  // namespace pimnw::core
