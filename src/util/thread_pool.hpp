// Work-stealing thread pool with futures and parallel_for helpers. Used by
// (a) the host execution engine to run simulated DPU jobs from multiple
// in-flight rank-batches, (b) upmem::Rank::launch, and (c) the CPU baseline
// batch aligner.
//
// Scheduling: each worker owns a Chase–Lev deque. Tasks submitted from a
// worker go to its own deque (LIFO for the owner, cheap and cache-warm);
// tasks submitted from outside the pool go to a mutex-protected injector
// queue. An idle worker pops its own deque, then steals the oldest task
// (FIFO) from the other workers round-robin, then drains the injector, then
// sleeps. Stealing is what keeps the tail of an LPT-sorted batch from
// pinning the whole pool behind one worker (ISSUE 2; cf. the host-side
// orchestration bottlenecks in arXiv:2208.01243).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace pimnw {

/// The worker-thread count every bench/example/default pool uses when the
/// user does not pass an explicit --threads: hardware concurrency clamped by
/// the cgroup CPU quota this process actually runs under (containers and CI
/// runners routinely hand out fewer cores than the host advertises), with a
/// floor of 1. One definition so a future policy change (e.g. honouring
/// CPU affinity masks) lands everywhere at once.
std::size_t default_worker_threads();

namespace detail {

/// Chase–Lev work-stealing deque of heap-allocated task nodes. Single owner
/// pushes/pops at the bottom; any number of thieves steal at the top. The
/// implementation uses seq_cst operations on top/bottom instead of the
/// classic relaxed-plus-fences formulation: the tasks scheduled through it
/// (whole DPU simulations, batch builds) are orders of magnitude more
/// expensive than the ordering cost, and ThreadSanitizer reasons precisely
/// about seq_cst while standalone fences are a known blind spot.
class TaskDeque {
 public:
  using Task = std::function<void()>;

  TaskDeque() : buffer_(new Ring(kInitialCapacity)) {}

  ~TaskDeque() {
    // Drain anything left (only reachable at pool destruction, after all
    // workers joined — no concurrency here).
    Task* t;
    while ((t = pop()) != nullptr) delete t;
    delete buffer_.load(std::memory_order_relaxed);
    for (Ring* r : retired_) delete r;
  }

  TaskDeque(const TaskDeque&) = delete;
  TaskDeque& operator=(const TaskDeque&) = delete;

  /// Owner only.
  void push(Task* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = buffer_.load(std::memory_order_relaxed);
    if (b - t >= ring->capacity) {
      ring = grow(ring, t, b);
    }
    ring->slot(b).store(task, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only. Returns nullptr when empty.
  Task* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    Task* task = nullptr;
    if (t <= b) {
      task = ring->slot(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst)) {
          task = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_seq_cst);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return task;
  }

  /// Any thread. Returns nullptr when empty or when it lost a race (the
  /// caller treats both as "try elsewhere").
  Task* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Ring* ring = buffer_.load(std::memory_order_acquire);
    Task* task = ring->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return nullptr;  // the slot value may be stale — never dereferenced
    }
    return task;
  }

  bool empty() const {
    return top_.load(std::memory_order_seq_cst) >=
           bottom_.load(std::memory_order_seq_cst);
  }

 private:
  static constexpr std::int64_t kInitialCapacity = 256;

  struct Ring {
    explicit Ring(std::int64_t cap)
        : capacity(cap), mask(cap - 1),
          slots(new std::atomic<Task*>[static_cast<std::size_t>(cap)]) {}
    std::atomic<Task*>& slot(std::int64_t i) {
      return slots[static_cast<std::size_t>(i & mask)];
    }
    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<Task*>[]> slots;
  };

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    Ring* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    buffer_.store(bigger, std::memory_order_release);
    // The old ring stays alive until destruction: a lagging thief may still
    // read (never dereference without a successful CAS) its slots.
    retired_.push_back(old);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> buffer_;
  std::vector<Ring*> retired_;  // owner only
};

}  // namespace detail

/// Fixed-size work-stealing thread pool. Tasks are std::function<void()>;
/// submit() returns a future, post() is fire-and-forget. The pool joins its
/// threads on destruction after draining all queues.
class ThreadPool {
 public:
  /// `threads == 0` means default_worker_threads() (hardware concurrency
  /// clamped by the cgroup CPU quota, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Monotonic scheduling counters (relaxed atomics bumped once per task —
  /// noise next to the tasks themselves, which are whole DPU simulations).
  /// `executed` counts every task run, `stolen` the subset a thread took
  /// from another worker's deque, `injected` the subset drained from the
  /// outside-submission queue. Observers (core/stats.hpp) read deltas.
  struct Stats {
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    std::uint64_t injected = 0;
  };
  Stats stats() const {
    return {executed_.load(std::memory_order_relaxed),
            stolen_.load(std::memory_order_relaxed),
            injected_.load(std::memory_order_relaxed)};
  }

  /// Index of the calling thread within this pool, or -1 for outside
  /// threads. Lets per-worker state (scratch arenas) be indexed without
  /// locks: a worker is one OS thread, so its slot is never contended.
  int worker_index() const;

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue(new detail::TaskDeque::Task([task]() { (*task)(); }));
    return fut;
  }

  /// Fire-and-forget enqueue (no future allocation). The callable must not
  /// throw; escaped exceptions are logged and swallowed by the worker.
  void post(std::function<void()> fn);

  /// Run fn(i) for i in [0, n), blocking until all iterations complete.
  /// Iterations are claimed one at a time from a shared atomic counter
  /// (dynamic scheduling), so a descending-cost sequence — e.g. LPT bins —
  /// spreads across workers instead of piling onto the first chunk. The
  /// caller participates and, once the counter is drained, helps execute
  /// other pool tasks while waiting, which makes nested parallel_for calls
  /// from inside pool tasks deadlock-free; when there is nothing left to
  /// help with, the caller parks on the pool's sleep/notify hook (no
  /// busy-spin) and the final iteration's completion unparks it. The first
  /// exception thrown by an iteration is rethrown here after all iterations
  /// finish.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Run one queued task on the calling thread (own deque, then stealing,
  /// then the injector). Returns false when nothing was immediately
  /// runnable. Lets an orchestrator that must block on pool work help
  /// execute it instead of parking a core.
  bool help_one() { return run_one(worker_index()); }

  /// Sleep the calling thread until new pool work is enqueued, the pool is
  /// stopping, or `wake()` returns true — the sleep/notify hook orchestrators
  /// pair with help_one() instead of timed-wait polling: help until the
  /// queues run dry, park, and a producer (enqueue) or a completion
  /// (unpark_all) wakes the thread the moment there is something to do.
  /// `wake` is evaluated with the pool mutex held and must only read atomics
  /// — taking a lock inside it can deadlock against unpark_all callers.
  /// Spurious returns are allowed; callers loop on their own condition.
  void park(const std::function<bool()>& wake);

  /// Wake every thread blocked in park(). Call after making some parked
  /// caller's wake() condition true (e.g. a batch's last job finishing).
  void unpark_all();

  /// The pre-work-stealing behaviour: contiguous chunks of ~n/(4·size())
  /// iterations submitted as tasks, caller blocking on their futures. Kept
  /// as the serial-reference scheduling for determinism tests and for the
  /// legacy barrier engine. Must not be called from inside a pool task (the
  /// caller does not help, so it can deadlock a saturated pool).
  void parallel_for_static(std::size_t n,
                           const std::function<void(std::size_t)>& fn);

 private:
  using Task = detail::TaskDeque::Task;

  void worker_loop(std::size_t index);
  void enqueue(Task* task);
  /// Pop/steal/drain one task for thread `index` (-1 = outside thread).
  /// Decrements pending_ on success.
  Task* acquire(int index);
  /// Acquire and run one task; false when nothing was runnable.
  bool run_one(int index);

  std::vector<std::unique_ptr<detail::TaskDeque>> deques_;
  std::vector<std::thread> workers_;
  std::deque<Task*> injector_;  // guarded by mutex_
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable parked_cv_;  // outside threads blocked in park()
  std::atomic<std::int64_t> pending_{0};  // queued, not yet acquired
  std::atomic<int> sleepers_{0};
  std::atomic<int> parked_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> injected_{0};
  bool stop_ = false;  // guarded by mutex_
};

/// Process-wide default pool (lazily constructed). Benches and the simulator
/// share it so we never oversubscribe the machine.
ThreadPool& global_pool();

/// One-slot look-ahead pipeline over global_pool(): stage(fn) starts building
/// the next item on a pool worker while the caller consumes the current one
/// (the paper's §4.1.3 reader-thread overlap of host prep with rank
/// execution). take() blocks until the staged item is ready.
///
/// Staged work must not itself block on the pool (it may run on the caller's
/// only worker); plan-building closures that are pure CPU satisfy this.
template <typename T>
class Prefetch {
 public:
  /// `pool == nullptr` stages on global_pool().
  explicit Prefetch(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Staging over a live stage is a usage error: the new future would
  /// silently replace the staged one, losing its result and potentially
  /// blocking in the abandoned future's destructor (symmetric with the
  /// take()-without-stage check).
  template <typename F>
  void stage(F&& fn) {
    PIMNW_CHECK_MSG(!staged_,
                    "Prefetch::stage() over an already-staged item — call "
                    "take() first (each stage() feeds one take())");
    next_ = (pool_ != nullptr ? *pool_ : global_pool())
                .submit(std::forward<F>(fn));
    staged_ = true;
  }

  /// Blocks for the staged item; rethrows anything the builder threw.
  /// Calling take() with nothing staged is a usage error (the underlying
  /// future would be invalid) and fails a PIMNW_CHECK instead of surfacing
  /// an opaque std::future_error.
  T take() {
    PIMNW_CHECK_MSG(staged_,
                    "Prefetch::take() with nothing staged — call stage() "
                    "first (each take() consumes one stage())");
    staged_ = false;
    if (next_.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      ++hits_;
    } else {
      ++misses_;
    }
    return next_.get();
  }

  bool staged() const { return staged_; }

  /// take() calls that found the staged item already built (the look-ahead
  /// won) vs. ones that had to block on the builder.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  ThreadPool* pool_;
  std::future<T> next_;
  bool staged_ = false;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pimnw
