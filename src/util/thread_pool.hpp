// Minimal work-stealing-free thread pool with futures and a parallel_for
// helper. Used by (a) the host orchestrator to run simulated ranks/DPUs in
// parallel and (b) the CPU baseline batch aligner.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pimnw {

/// Fixed-size thread pool. Tasks are std::function<void()>; submit() returns a
/// future. The pool joins its threads on destruction after draining the queue.
class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n), blocking until all iterations complete.
  /// Iterations are distributed in contiguous chunks.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide default pool (lazily constructed). Benches and the simulator
/// share it so we never oversubscribe the machine.
ThreadPool& global_pool();

/// One-slot look-ahead pipeline over global_pool(): stage(fn) starts building
/// the next item on a pool worker while the caller consumes the current one
/// (the paper's §4.1.3 reader-thread overlap of host prep with rank
/// execution). take() blocks until the staged item is ready.
///
/// Staged work must not itself block on the pool (it may run on the caller's
/// only worker); plan-building closures that are pure CPU satisfy this.
template <typename T>
class Prefetch {
 public:
  template <typename F>
  void stage(F&& fn) {
    next_ = global_pool().submit(std::forward<F>(fn));
    staged_ = true;
  }

  /// Blocks for the staged item; rethrows anything the builder threw.
  T take() {
    staged_ = false;
    return next_.get();
  }

  bool staged() const { return staged_; }

 private:
  std::future<T> next_;
  bool staged_ = false;
};

}  // namespace pimnw
