// Minimal work-stealing-free thread pool with futures and a parallel_for
// helper. Used by (a) the host orchestrator to run simulated ranks/DPUs in
// parallel and (b) the CPU baseline batch aligner.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pimnw {

/// Fixed-size thread pool. Tasks are std::function<void()>; submit() returns a
/// future. The pool joins its threads on destruction after draining the queue.
class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n), blocking until all iterations complete.
  /// Iterations are distributed in contiguous chunks.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide default pool (lazily constructed). Benches and the simulator
/// share it so we never oversubscribe the machine.
ThreadPool& global_pool();

}  // namespace pimnw
