// Process-global metrics registry (DESIGN.md §17).
//
// Live, scrapeable, bounded-memory telemetry for long-running services:
//
//   * Counter    — monotonically increasing, sharded across cache lines so
//                  hot-path increments from many threads do not contend.
//   * Gauge      — a double that can move both ways (queue depth, backlog).
//   * Histogram  — log-bucketed with a fixed bucket count, so memory stays
//                  bounded no matter how many samples are recorded; snapshots
//                  are mergeable and support quantile *estimation* (the exact
//                  nearest-rank quantiles in core/service.cpp remain the
//                  test-grade reference under its sample cap).
//   * SloBurnWindow — sliding-window good/bad event ratio for SLO burn-rate
//                  tracking (deadline misses over short and long windows).
//
// Every value here is a pure observer: instrumentation reads modeled state and
// never feeds back into it, so scores/CIGARs/modeled cycles/DMA bytes are
// bit-identical with telemetry enabled or disabled (pinned by metrics_test).
//
// Exposition: `write_prometheus` emits Prometheus text format 0.0.4;
// `write_file` snapshots it to disk for no-network environments; the embedded
// scrape endpoint lives in util/metrics_http.hpp.
//
// Handles returned by the registry (Counter&/Gauge&/Histogram&) are stable for
// the life of the process — series are never deallocated — so call sites may
// cache them in function-local statics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace pimnw {
namespace metrics {

/// Global on/off switch (default on). Checked with one relaxed atomic load at
/// every instrumentation site; when off, instrumented code records nothing.
bool enabled();
void set_enabled(bool on);

/// Label set for one series within a family, e.g. {{"backend", "pim"}}.
/// Order is normalised (sorted by key) when the series is registered.
using Labels = std::vector<std::pair<std::string, std::string>>;

// ---------------------------------------------------------------------------
// Counter: sharded monotonic counter.

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    shard_for_thread().value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards. Monotone but not a linearizable point-in-time read;
  /// good enough for scraping.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  static constexpr std::size_t kShards = 8;

  Shard& shard_for_thread() noexcept;

  Shard shards_[kShards];
};

// ---------------------------------------------------------------------------
// Gauge: an atomically updated double.

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept;
  void add(double delta) noexcept;  // CAS loop; no atomic<double>::fetch_add.
  double value() const noexcept;

 private:
  std::atomic<std::uint64_t> bits_{0};  // bit pattern of a double, init 0.0
};

// ---------------------------------------------------------------------------
// Histogram: log-spaced buckets, bounded memory, mergeable snapshots.

struct HistogramOptions {
  /// Upper bound of the first bucket; samples <= min_bound land in bucket 0.
  double min_bound = 1e-6;
  /// Geometric growth factor between consecutive bucket upper bounds.
  double growth = 2.0;
  /// Number of finite buckets; one implicit +Inf overflow bucket follows.
  int bucket_count = 40;

  bool operator==(const HistogramOptions& o) const {
    return min_bound == o.min_bound && growth == o.growth &&
           bucket_count == o.bucket_count;
  }
};

/// An immutable copy of a histogram's state. Snapshots taken from live
/// histograms under concurrent recording are "torn-consistent": each bucket
/// count is itself atomic, but the set need not correspond to one instant.
struct HistogramSnapshot {
  HistogramOptions options;
  std::vector<std::uint64_t> counts;  // bucket_count finite + 1 overflow
  std::uint64_t count = 0;            // total samples
  double sum = 0.0;                   // sum of sample values

  /// Upper bound of finite bucket i: min_bound * growth^i.
  double upper_bound(int i) const;

  /// Quantile estimate, q in [0, 1]: locate the bucket holding the
  /// nearest-rank sample and interpolate linearly inside it. Samples in the
  /// overflow bucket are attributed the last finite upper bound (the estimate
  /// is a lower bound there). Returns 0 for an empty snapshot.
  double quantile(double q) const;

  /// Pointwise sum. Both snapshots must share identical options
  /// (PIMNW_CHECK'd). Merge is associative and commutative, pinned by tests.
  static HistogramSnapshot merge(const HistogramSnapshot& a,
                                 const HistogramSnapshot& b);
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value) noexcept;
  HistogramSnapshot snapshot() const;
  const HistogramOptions& options() const { return options_; }

  /// Bucket index a value maps to (bucket_count == overflow). Exposed so
  /// tests can pin the boundary arithmetic directly.
  int bucket_index(double value) const noexcept;

 private:
  HistogramOptions options_;
  double inv_log_growth_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double bit pattern, CAS-added
};

// ---------------------------------------------------------------------------
// SloBurnWindow: sliding-window miss ratio -> burn rate.

/// Tracks good/bad events over a sliding window of `window_seconds`, bucketed
/// into `bucket_count` epoch-tagged slots so old data ages out without
/// per-event storage. Burn rate = miss_ratio / (1 - objective): 1.0 means the
/// error budget is being consumed exactly at the rate the SLO allows.
/// The caller supplies `now` (seconds on any monotone clock), which keeps the
/// window deterministic under test.
class SloBurnWindow {
 public:
  SloBurnWindow(double window_seconds, double objective,
                int bucket_count = 60);

  void record(double now_seconds, bool good, std::uint64_t count = 1);

  double miss_ratio(double now_seconds) const;
  double burn_rate(double now_seconds) const;
  std::uint64_t total(double now_seconds) const;
  std::uint64_t bad(double now_seconds) const;
  double window_seconds() const { return bucket_seconds_ * ring_size(); }
  double objective() const { return objective_; }

 private:
  struct Bucket {
    std::int64_t epoch = -1;
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
  };

  std::size_t ring_size() const { return ring_.size(); }
  void sum_window(double now_seconds, std::uint64_t* good_out,
                  std::uint64_t* bad_out) const;

  double bucket_seconds_;
  double objective_;
  mutable std::mutex mutex_;
  std::vector<Bucket> ring_;
};

// ---------------------------------------------------------------------------
// MetricsRegistry: labeled families of the above.

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-global registry every instrumentation site uses. Tests may
  /// construct private instances instead.
  static MetricsRegistry& global();

  /// Get-or-create a series. `help` is recorded on first registration of the
  /// family; registering the same family name with a different metric type is
  /// a PIMNW_CHECK failure, as is re-registering a histogram family with
  /// different options. Returned references are valid forever.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const Labels& labels = {},
                       HistogramOptions options = {});

  /// Prometheus text exposition (format 0.0.4). Families sorted by name,
  /// series by label signature, so output is deterministic. Pure observer:
  /// scraping perturbs no counter (pinned by metrics_test).
  void write_prometheus(std::ostream& os) const;
  std::string scrape() const;

  /// File-snapshot fallback for no-network environments: atomically replaces
  /// `path` (write to path.tmp, rename). Returns false on I/O failure.
  bool write_file(const std::string& path) const;

  std::size_t family_count() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;  // sorted by key
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    HistogramOptions hist_options;
    // Keyed by the serialized label signature; series are never erased.
    std::map<std::string, std::unique_ptr<Series>> series;
  };

  Family& family_locked(const std::string& name, Kind kind,
                        const std::string& help,
                        const HistogramOptions* options);
  Series& series_locked(Family& family, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace metrics
}  // namespace pimnw
