// Lightweight runtime-check macros used across the library.
//
// PIMNW_CHECK is always on (it guards API misuse and simulator invariants such
// as MRAM bounds); PIMNW_DCHECK compiles out in release builds and is used in
// hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#include "util/logging.hpp"

namespace pimnw {

/// Thrown when a PIMNW_CHECK fails. Carries the failing expression and
/// location so tests can assert on misuse being detected.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

/// Defined in util/flight_recorder.cpp: records the failure as a fault event
/// in the global FlightRecorder and, when a black-box dump has been armed
/// (FlightRecorder::arm_check_dump), writes the provenance-stamped dump before
/// the CheckError propagates.
void notify_check_fail(const std::string& description);

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PIMNW_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  // Record the fault (and dump the black box if armed) before logging or
  // throwing: exceptions swallowed by a worker or rethrown at the commit
  // barrier still leave one record of the original site.
  notify_check_fail(os.str());
  PIMNW_ERROR(os.str());
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace pimnw

#define PIMNW_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::pimnw::detail::check_failed(#expr, __FILE__, __LINE__, "");        \
  } while (0)

#define PIMNW_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream pimnw_os_;                                        \
      pimnw_os_ << msg;                                                    \
      ::pimnw::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                    pimnw_os_.str());                      \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define PIMNW_DCHECK(expr) ((void)0)
#else
#define PIMNW_DCHECK(expr) PIMNW_CHECK(expr)
#endif
