// Low-overhead tracing for the host execution engine (ISSUE 3,
// DESIGN.md "Observability").
//
// Two track groups, distinguished by the Chrome-trace "pid":
//
//  * kHostPid — the *host pipeline*: wall-clock RAII spans recorded by the
//    thread that does the work (batch build, per-DPU exec/steal, sequenced
//    commit), one lane per recording thread. Lanes are named by the thread
//    (`set_thread_name`), so pool workers show up as "worker N" and the
//    orchestrator as "engine".
//
//  * kModeledPid — the *modeled PiM timeline*: spans with explicit virtual
//    timestamps reconstructed by the engine's commit stage from the cost
//    models (per-rank transfer/launch lanes, per-DPU lanes with modeled
//    cycles at 350 MHz). These are paper-style Gantt charts of LPT quality;
//    they share the JSON file but run on modeled time, not wall time.
//
// Events land in per-thread buffers: registration takes the registry mutex
// once per thread, appends are plain vector pushes (single writer — the
// owning thread), and nothing is shared until export. Recording is gated on
// one relaxed atomic load; when tracing is off a span costs that load and
// nothing else (the PIMNW_TRACE_SPAN macro skips even the name formatting).
// Compile-time opt-out: configure with -DPIMNW_TRACE=OFF and every macro
// expands to nothing.
//
// Exporting (`write_json`) must not race recording: call it after the run
// under observation has completed, as bench/host_throughput and the
// pimnw_trace example do. The output is the Chrome trace event format, which
// https://ui.perfetto.dev loads directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace pimnw::trace {

/// Track groups ("processes" in the Chrome trace model).
inline constexpr std::uint32_t kHostPid = 1;
inline constexpr std::uint32_t kModeledPid = 2;

struct Event {
  std::string name;
  double ts_us = 0.0;   // wall μs since recorder origin, or modeled μs
  double dur_us = 0.0;  // 'X' spans only
  std::uint32_t pid = kHostPid;
  std::uint32_t tid = 0;
  char phase = 'X';  // 'X' complete span, 'C' counter, 'i' instant
  double value = 0.0;              // 'C' events
  std::uint64_t cycles = 0;        // modeled DPU cycles (args.cycles if != 0)
};

/// Runtime toggle. Off by default; flipping it on mid-run is safe (spans
/// check once, at construction).
bool enabled();
void set_enabled(bool on);

/// Wall-clock microseconds since the recorder's origin (first use).
double now_us();

/// Name the calling thread's host-pipeline lane. Idempotent; cheap enough to
/// call unconditionally (no-op while tracing is disabled).
void set_thread_name(const std::string& name);

/// Name a modeled-timeline lane (tid within kModeledPid).
void set_modeled_lane_name(std::uint32_t tid, const std::string& name);

/// Record a completed wall-clock span on the calling thread's lane.
/// This and the recorders below are no-ops while tracing is disabled.
void complete_span(std::string name, double ts_us, double dur_us);

/// Record a monotonic-counter sample on the calling thread's lane.
void counter(std::string name, double value);

/// Record an instant event on the calling thread's lane.
void instant(std::string name);

/// Record a span on a modeled-timeline lane with explicit virtual
/// timestamps. `cycles`, when nonzero, is exported as args.cycles so
/// modeled-cycle totals can be recovered from the trace exactly.
void modeled_span(std::string name, std::uint32_t tid, double ts_us,
                  double dur_us, std::uint64_t cycles = 0);

/// Record a counter-track sample on the modeled timeline (tid 0 of
/// kModeledPid) at an explicit virtual timestamp — the profiler's pipeline
/// utilisation / MRAM-stall tracks (DESIGN.md §12).
void modeled_counter(std::string name, double ts_us, double value);

/// Merged copy of every thread's events (test/export API — must not race
/// active recording).
std::vector<Event> snapshot();

/// Lane names as ((pid, tid), name) pairs.
std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>, std::string>>
lane_names();

/// Drop all recorded events (lane names and buffers stay registered —
/// they belong to long-lived threads).
void clear();

/// Write the Chrome trace event JSON. Returns false (and logs) on I/O error.
void write_json(std::ostream& out);
bool write_json_file(const std::string& path);

/// RAII wall-clock span on the calling thread's host lane. Inactive (and
/// name never touched) when tracing was disabled at construction.
class Span {
 public:
  explicit Span(std::string name)
      : active_(enabled()), name_(active_ ? std::move(name) : std::string()) {
    if (active_) start_us_ = now_us();
  }
  ~Span() {
    if (active_) complete_span(std::move(name_), start_us_,
                               now_us() - start_us_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
  double start_us_ = 0.0;
  std::string name_;
};

}  // namespace pimnw::trace

// Macro layer: evaluates the name expression only when tracing is enabled,
// and compiles to nothing under -DPIMNW_TRACE=OFF.
#ifndef PIMNW_TRACE_DISABLED
#define PIMNW_TRACE_CONCAT_(a, b) a##b
#define PIMNW_TRACE_CONCAT(a, b) PIMNW_TRACE_CONCAT_(a, b)
#define PIMNW_TRACE_SPAN(name_expr)                            \
  ::pimnw::trace::Span PIMNW_TRACE_CONCAT(pimnw_trace_span_,   \
                                          __LINE__)(           \
      ::pimnw::trace::enabled() ? (name_expr) : std::string())
#define PIMNW_TRACE_COUNTER(name_expr, value_expr)             \
  do {                                                         \
    if (::pimnw::trace::enabled())                             \
      ::pimnw::trace::counter((name_expr), (value_expr));      \
  } while (0)
#define PIMNW_TRACE_INSTANT(name_expr)                         \
  do {                                                         \
    if (::pimnw::trace::enabled())                             \
      ::pimnw::trace::instant((name_expr));                    \
  } while (0)
#else
#define PIMNW_TRACE_SPAN(name_expr) do {} while (0)
#define PIMNW_TRACE_COUNTER(name_expr, value_expr) do {} while (0)
#define PIMNW_TRACE_INSTANT(name_expr) do {} while (0)
#endif
