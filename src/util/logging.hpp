// Leveled stderr logger. Kept deliberately simple: benches print structured
// tables on stdout; the logger is for progress and diagnostics only.
//
// WARN and ERROR lines are additionally mirrored into the global
// FlightRecorder (util/flight_recorder.hpp) so a post-mortem black box
// carries the recent diagnostic context.
//
// PIMNW_WARN_RATELIMITED guards per-item WARNs (e.g. one line per rejected
// pair) behind a token bucket per call site, so a production-rate flood
// degrades to a few lines per second plus a suppressed-count summary.
#pragma once

#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>

namespace pimnw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Set the threshold from a CLI-style name ("debug", "info", "warn",
/// "error"). Returns false (level unchanged) for anything else.
bool set_log_level_by_name(const std::string& name);

/// Token bucket for one log call site: at most `burst` messages back to back,
/// refilled at `rate_per_second`. Intended to live in a function-local static
/// (see PIMNW_WARN_RATELIMITED), so one instance guards one source line.
class LogRateLimiter {
 public:
  LogRateLimiter(double rate_per_second, double burst);

  /// Deterministic core (seconds on any monotone clock): returns -1 if the
  /// message must be suppressed, otherwise the number of messages suppressed
  /// since the last admitted one (0 when nothing was dropped).
  std::int64_t admit(double now_seconds);

  /// admit() against the process-wide steady clock.
  std::int64_t admit();

  std::uint64_t total_suppressed() const;

 private:
  double rate_per_second_;
  double burst_;
  mutable std::mutex mutex_;
  double tokens_;
  double last_seconds_ = 0.0;
  bool started_ = false;
  std::uint64_t suppressed_since_admit_ = 0;
  std::uint64_t total_suppressed_ = 0;
};

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace pimnw

#define PIMNW_LOG(level, msg)                                      \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::pimnw::log_level())) {                  \
      std::ostringstream pimnw_log_os_;                            \
      pimnw_log_os_ << msg;                                        \
      ::pimnw::detail::log_emit(level, pimnw_log_os_.str());       \
    }                                                              \
  } while (0)

#define PIMNW_DEBUG(msg) PIMNW_LOG(::pimnw::LogLevel::kDebug, msg)
#define PIMNW_INFO(msg) PIMNW_LOG(::pimnw::LogLevel::kInfo, msg)
#define PIMNW_WARN(msg) PIMNW_LOG(::pimnw::LogLevel::kWarn, msg)
#define PIMNW_ERROR(msg) PIMNW_LOG(::pimnw::LogLevel::kError, msg)

// Rate-limited WARN: one token bucket per call site (function-local static).
// When a message is admitted after suppressions, the count of dropped
// messages since the last admitted one is appended, so the log still shows
// the magnitude of the flood.
#define PIMNW_WARN_RATELIMITED(rate_per_second, burst, msg)                  \
  do {                                                                       \
    static ::pimnw::LogRateLimiter pimnw_ratelimit_((rate_per_second),       \
                                                    (burst));                \
    const std::int64_t pimnw_suppressed_ = pimnw_ratelimit_.admit();         \
    if (pimnw_suppressed_ == 0) {                                            \
      PIMNW_WARN(msg);                                                       \
    } else if (pimnw_suppressed_ > 0) {                                      \
      PIMNW_WARN(msg << " [" << pimnw_suppressed_                            \
                     << " similar messages suppressed]");                    \
    }                                                                        \
  } while (0)
