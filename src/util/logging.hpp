// Leveled stderr logger. Kept deliberately simple: benches print structured
// tables on stdout; the logger is for progress and diagnostics only.
#pragma once

#include <sstream>
#include <string>

namespace pimnw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Set the threshold from a CLI-style name ("debug", "info", "warn",
/// "error"). Returns false (level unchanged) for anything else.
bool set_log_level_by_name(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace pimnw

#define PIMNW_LOG(level, msg)                                      \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::pimnw::log_level())) {                  \
      std::ostringstream pimnw_log_os_;                            \
      pimnw_log_os_ << msg;                                        \
      ::pimnw::detail::log_emit(level, pimnw_log_os_.str());       \
    }                                                              \
  } while (0)

#define PIMNW_DEBUG(msg) PIMNW_LOG(::pimnw::LogLevel::kDebug, msg)
#define PIMNW_INFO(msg) PIMNW_LOG(::pimnw::LogLevel::kInfo, msg)
#define PIMNW_WARN(msg) PIMNW_LOG(::pimnw::LogLevel::kWarn, msg)
#define PIMNW_ERROR(msg) PIMNW_LOG(::pimnw::LogLevel::kError, msg)
