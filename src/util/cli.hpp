// Tiny command-line flag parser shared by benches and examples.
//
// Supports `--key=value`, `--key value`, and boolean `--flag`. Every flag is
// registered with a default and a help string; `--help` prints usage and
// exits. Unknown flags are an error so typos don't silently fall back to
// defaults in experiment scripts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pimnw {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Register flags (call before parse()). Returns *this for chaining.
  Cli& flag(const std::string& name, std::int64_t def, const std::string& help);
  Cli& flag(const std::string& name, double def, const std::string& help);
  Cli& flag(const std::string& name, bool def, const std::string& help);
  Cli& flag(const std::string& name, const std::string& def,
            const std::string& help);

  /// Parse argv. On `--help`, prints usage and calls std::exit(0).
  /// Throws std::invalid_argument on unknown flags or malformed values.
  void parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Entry {
    Kind kind;
    std::string value;  // canonical textual representation
    std::string def;
    std::string help;
  };

  const Entry& lookup(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace pimnw
