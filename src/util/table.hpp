// Plain-text table printer used by the benchmark harness to render the
// paper's tables (rows of label / time / speedup etc.) on stdout.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pimnw {

class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// First row added acts as the header.
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Render with column alignment. Numeric-looking cells are right-aligned.
  std::string render() const;

  /// Convenience: render() to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
std::string fmt_seconds(double s);
std::string fmt_double(double v, int precision);
std::string fmt_percent(double fraction, int precision = 1);
std::string fmt_count(std::uint64_t n);

}  // namespace pimnw
