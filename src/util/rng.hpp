// Deterministic, fast PRNGs for dataset generation and property tests.
//
// All generators in this project are seeded explicitly so every dataset and
// experiment is reproducible run-to-run; std::mt19937 is avoided because its
// huge state makes copying generators around awkward and it is slow to seed.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace pimnw {

/// SplitMix64 — used to expand a single 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small-state, high-quality, fast PRNG.
/// Satisfies UniformRandomBitGenerator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x1234abcdULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound) {
    PIMNW_CHECK(bound > 0);
    // Debiased multiply-shift; rejection loop runs ~1 iteration on average.
    while (true) {
      const std::uint64_t x = (*this)();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    PIMNW_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-item determinism).
  Xoshiro256 fork() { return Xoshiro256((*this)()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace pimnw
