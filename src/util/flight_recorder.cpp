#include "util/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/provenance.hpp"

namespace pimnw {
namespace {

double monotone_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void write_json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSpan: return "span";
    case FlightEventKind::kFlush: return "flush";
    case FlightEventKind::kLog: return "log";
    case FlightEventKind::kFault: return "fault";
    case FlightEventKind::kNote: return "note";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

FlightRecorder& FlightRecorder::global() {
  // Leaked on purpose: the check-failure hook can fire during static
  // destruction of other objects.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> events = chronological_locked();
  if (events.size() > capacity) {
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(capacity));
  }
  capacity_ = capacity;
  ring_ = std::move(events);
  ring_.reserve(capacity_);
  next_ = ring_.size() % capacity_;
}

void FlightRecorder::record_locked(FlightEventKind kind, std::string message) {
  Event event;
  event.seq = seq_++;
  event.t_seconds = monotone_seconds();
  event.kind = kind;
  event.message = std::move(message);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    next_ = ring_.size() % capacity_;
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
  }
}

void FlightRecorder::record(FlightEventKind kind, std::string message) {
  std::lock_guard<std::mutex> lock(mutex_);
  record_locked(kind, std::move(message));
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
}

std::vector<FlightRecorder::Event> FlightRecorder::chronological_locked()
    const {
  std::vector<Event> events = ring_;
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return events;
}

std::string FlightRecorder::dump_json(const std::string& reason) const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = chronological_locked();
  }
  std::ostringstream os;
  os << "{\n  \"provenance\": " << provenance_json() << ",\n";
  os << "  \"reason\": \"";
  write_json_escaped(os, reason);
  os << "\",\n";
  os << "  \"dumped_at_seconds\": " << monotone_seconds() << ",\n";
  os << "  \"events\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    os << "    {\"seq\": " << e.seq << ", \"t_seconds\": " << e.t_seconds
       << ", \"kind\": \"" << flight_event_kind_name(e.kind)
       << "\", \"message\": \"";
    write_json_escaped(os, e.message);
    os << "\"}";
    if (i + 1 < events.size()) os << ',';
    os << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  const std::string& reason) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << dump_json(reason);
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void FlightRecorder::arm_check_dump(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_dump_path_ = path;
}

bool FlightRecorder::check_dump_armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !check_dump_path_.empty();
}

std::string FlightRecorder::on_check_failure(const std::string& description) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    record_locked(FlightEventKind::kFault, description);
    path.swap(check_dump_path_);  // one dump per arm
  }
  if (!path.empty()) {
    dump_to_file(path, "check_failure: " + description);
  }
  return path;
}

void flight_record(FlightEventKind kind, std::string message) {
  FlightRecorder::global().record(kind, std::move(message));
}

namespace detail {

// Declared in util/check.hpp; keeps check.hpp header-only while routing every
// check failure through the flight recorder.
void notify_check_fail(const std::string& description) {
  FlightRecorder::global().on_check_failure(description);
}

}  // namespace detail
}  // namespace pimnw
