#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace pimnw {
namespace {

std::string kind_name(int kind) {
  switch (kind) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "bool";
    default: return "string";
  }
}

}  // namespace

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli& Cli::flag(const std::string& name, std::int64_t def,
               const std::string& help) {
  PIMNW_CHECK_MSG(!entries_.count(name), "duplicate flag --" << name);
  entries_[name] = {Kind::kInt, std::to_string(def), std::to_string(def), help};
  order_.push_back(name);
  return *this;
}

Cli& Cli::flag(const std::string& name, double def, const std::string& help) {
  PIMNW_CHECK_MSG(!entries_.count(name), "duplicate flag --" << name);
  std::ostringstream os;
  os << def;
  entries_[name] = {Kind::kDouble, os.str(), os.str(), help};
  order_.push_back(name);
  return *this;
}

Cli& Cli::flag(const std::string& name, bool def, const std::string& help) {
  PIMNW_CHECK_MSG(!entries_.count(name), "duplicate flag --" << name);
  entries_[name] = {Kind::kBool, def ? "1" : "0", def ? "1" : "0", help};
  order_.push_back(name);
  return *this;
}

Cli& Cli::flag(const std::string& name, const std::string& def,
               const std::string& help) {
  PIMNW_CHECK_MSG(!entries_.count(name), "duplicate flag --" << name);
  entries_[name] = {Kind::kString, def, def, help};
  order_.push_back(name);
  return *this;
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("positional arguments not supported: " + arg);
    }
    arg = arg.substr(2);
    std::string key;
    std::string value;
    bool have_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    } else {
      key = arg;
    }
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      throw std::invalid_argument("unknown flag --" + key + "\n" + usage());
    }
    Entry& entry = it->second;
    if (!have_value) {
      if (entry.kind == Kind::kBool) {
        value = "1";
      } else {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for --" + key);
        }
        value = argv[++i];
      }
    }
    // Validate numeric values eagerly so errors point at the flag.
    try {
      std::size_t pos = 0;
      if (entry.kind == Kind::kInt) {
        (void)std::stoll(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      } else if (entry.kind == Kind::kDouble) {
        (void)std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      } else if (entry.kind == Kind::kBool) {
        if (value != "0" && value != "1" && value != "true" &&
            value != "false") {
          throw std::invalid_argument(value);
        }
        value = (value == "1" || value == "true") ? "1" : "0";
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("bad value for --" + key + ": " + value);
    }
    entry.value = value;
  }
}

const Cli::Entry& Cli::lookup(const std::string& name, Kind kind) const {
  auto it = entries_.find(name);
  PIMNW_CHECK_MSG(it != entries_.end(), "flag --" << name << " not registered");
  PIMNW_CHECK_MSG(it->second.kind == kind,
                  "flag --" << name << " is not of type "
                            << kind_name(static_cast<int>(kind)));
  return it->second;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::stoll(lookup(name, Kind::kInt).value);
}

double Cli::get_double(const std::string& name) const {
  return std::stod(lookup(name, Kind::kDouble).value);
}

bool Cli::get_bool(const std::string& name) const {
  return lookup(name, Kind::kBool).value == "1";
}

const std::string& Cli::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).value;
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    os << "  --" << name << " (" << kind_name(static_cast<int>(e.kind))
       << ", default " << e.def << ")\n      " << e.help << "\n";
  }
  return os.str();
}

}  // namespace pimnw
