// Minimal embedded HTTP scrape endpoint for the metrics registry
// (DESIGN.md §17).
//
// One listener thread on 127.0.0.1 serving exactly two routes:
//   GET /metrics  -> Prometheus text exposition of a MetricsRegistry
//   GET /healthz  -> 200 "ok"
// Anything else is 404. Connections are handled sequentially on the listener
// thread — a scrape is a single small response, and this endpoint is for one
// Prometheus scraper, not user traffic.
//
// Port 0 binds an ephemeral port (readable via port() after start), which is
// what the verify.sh smoke and tests use to avoid collisions. If binding
// fails the caller falls back to MetricsRegistry::write_file snapshots.
#pragma once

#include <atomic>
#include <string>
#include <thread>

namespace pimnw {
namespace metrics {

class MetricsRegistry;

class MetricsHttpServer {
 public:
  /// Scrapes `registry`, or the process-global registry when null.
  explicit MetricsHttpServer(MetricsRegistry* registry = nullptr);
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and start serving. Returns false
  /// (with a WARN log) if the socket cannot be bound; the server is then
  /// inert and stop() is a no-op.
  bool start(int port);

  /// The bound port, or 0 when not running.
  int port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }

  /// Shut the listener down and join the thread. Idempotent.
  void stop();

 private:
  void serve_loop();

  MetricsRegistry* registry_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int port_ = 0;
};

}  // namespace metrics
}  // namespace pimnw
