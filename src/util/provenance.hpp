// Provenance stamping for stats/bench JSON reports (DESIGN.md §12).
//
// Every machine-readable report the repo emits (core/stats run JSON, the
// BENCH_*.json baselines, pimnw_prof --json-out) carries one "provenance"
// object: the git SHA and build type baked in at configure time, the wall
// clock at emission, and — where the producer has one — a snapshot of the
// modeled-relevant Params. scripts/bench_diff.py skips the subtree when
// comparing, so stamps never trip the regression gate.
#pragma once

#include <cstddef>
#include <string>

namespace pimnw {

/// Git commit SHA of the checkout, captured at CMake configure time
/// ("unknown" outside a git checkout or when git is unavailable).
const char* build_git_sha();

/// CMake build type of this binary ("Release", "Debug", ... or "unknown").
const char* build_preset();

/// Current UTC wall clock as ISO-8601, e.g. "2026-08-05T12:34:56Z".
std::string timestamp_utc();

/// The shared provenance JSON object:
///   { "git_sha": "...", "build_type": "...", "timestamp": "...",
///     "params": {...}, "machine": {...} }
/// `params_json` must be a complete JSON value (core::params_json) or empty,
/// in which case the field is emitted as null. `machine_json` carries
/// machine-dependent facts (worker threads, hardware concurrency) that must
/// not gate a cross-machine bench diff; when empty the field is omitted.
std::string provenance_json(const std::string& params_json = std::string(),
                            const std::string& machine_json = std::string());

/// The standard machine block for provenance_json's `machine_json` argument:
///   { "threads": N, "hardware_threads": M }
/// where `threads` is the worker-pool size the report's sections really ran
/// with and M is std::thread::hardware_concurrency(). bench_diff.py skips
/// "machine" subtrees wherever they appear.
std::string machine_json(std::size_t threads);

}  // namespace pimnw
