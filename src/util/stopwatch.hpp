// Wall-clock stopwatch for measuring host-side throughput (used to calibrate
// the CPU baseline timing model). Modeled PiM time never uses this — it comes
// from the simulator's cycle accounting.
#pragma once

#include <chrono>

namespace pimnw {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pimnw
