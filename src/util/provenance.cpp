#include "util/provenance.hpp"

#include <cstdio>
#include <ctime>
#include <thread>

#ifndef PIMNW_GIT_SHA
#define PIMNW_GIT_SHA "unknown"
#endif
#ifndef PIMNW_BUILD_TYPE
#define PIMNW_BUILD_TYPE "unknown"
#endif

namespace pimnw {

const char* build_git_sha() { return PIMNW_GIT_SHA; }

const char* build_preset() { return PIMNW_BUILD_TYPE; }

std::string timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

std::string provenance_json(const std::string& params_json,
                            const std::string& machine_json) {
  std::string out = "{ \"git_sha\": \"";
  out += build_git_sha();
  out += "\", \"build_type\": \"";
  out += build_preset();
  out += "\", \"timestamp\": \"";
  out += timestamp_utc();
  out += "\", \"params\": ";
  out += params_json.empty() ? "null" : params_json;
  if (!machine_json.empty()) {
    out += ", \"machine\": ";
    out += machine_json;
  }
  out += " }";
  return out;
}

std::string machine_json(std::size_t threads) {
  std::string out = "{ \"threads\": ";
  out += std::to_string(threads);
  out += ", \"hardware_threads\": ";
  out += std::to_string(std::thread::hardware_concurrency());
  out += " }";
  return out;
}

}  // namespace pimnw
