#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pimnw {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool set_log_level_by_name(const std::string& name) {
  if (name == "debug") {
    set_log_level(LogLevel::kDebug);
  } else if (name == "info") {
    set_log_level(LogLevel::kInfo);
  } else if (name == "warn") {
    set_log_level(LogLevel::kWarn);
  } else if (name == "error") {
    set_log_level(LogLevel::kError);
  } else {
    return false;
  }
  return true;
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[pimnw " << level_tag(level) << "] " << msg << "\n";
}

}  // namespace detail
}  // namespace pimnw
