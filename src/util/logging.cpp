#include "util/logging.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>

#include "util/flight_recorder.hpp"

namespace pimnw {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool set_log_level_by_name(const std::string& name) {
  if (name == "debug") {
    set_log_level(LogLevel::kDebug);
  } else if (name == "info") {
    set_log_level(LogLevel::kInfo);
  } else if (name == "warn") {
    set_log_level(LogLevel::kWarn);
  } else if (name == "error") {
    set_log_level(LogLevel::kError);
  } else {
    return false;
  }
  return true;
}

LogRateLimiter::LogRateLimiter(double rate_per_second, double burst)
    : rate_per_second_(rate_per_second),
      burst_(std::max(1.0, burst)),
      tokens_(std::max(1.0, burst)) {}

std::int64_t LogRateLimiter::admit(double now_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!started_) {
    started_ = true;
    last_seconds_ = now_seconds;
  }
  const double elapsed = std::max(0.0, now_seconds - last_seconds_);
  last_seconds_ = now_seconds;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_second_);
  if (tokens_ < 1.0) {
    ++suppressed_since_admit_;
    ++total_suppressed_;
    return -1;
  }
  tokens_ -= 1.0;
  const std::int64_t suppressed =
      static_cast<std::int64_t>(suppressed_since_admit_);
  suppressed_since_admit_ = 0;
  return suppressed;
}

std::int64_t LogRateLimiter::admit() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return admit(std::chrono::duration<double>(Clock::now() - start).count());
}

std::uint64_t LogRateLimiter::total_suppressed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_suppressed_;
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  // Mirror WARN/ERROR into the flight recorder so post-mortem dumps carry the
  // recent diagnostic context. Outside g_mutex: the recorder has its own lock
  // and never logs, so there is no ordering or recursion hazard.
  if (level >= LogLevel::kWarn) {
    flight_record(FlightEventKind::kLog,
                  std::string(level_tag(level)) + " " + msg);
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[pimnw " << level_tag(level) << "] " << msg << "\n";
}

}  // namespace detail
}  // namespace pimnw
