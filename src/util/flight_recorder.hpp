// Fault flight recorder (DESIGN.md §17).
//
// A bounded ring of recent events — spans, flush records, warn/error log
// lines, faults, free-form notes — that can be dumped as a provenance-stamped
// JSON "black box" when something goes wrong: a PIMNW_CHECK failure (opt-in
// via arm_check_dump, so tests that intentionally provoke CheckError do not
// spew files), a deadline storm detected by the service, or an explicit
// trigger. Memory is bounded by the capacity; recording overwrites the oldest
// event. Recording is mutex-guarded — event rates are low (flushes, WARNs,
// faults), never per-pair hot paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pimnw {

enum class FlightEventKind { kSpan, kFlush, kLog, kFault, kNote };

const char* flight_event_kind_name(FlightEventKind kind);

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1024);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-global recorder that check/log hooks and service
  /// instrumentation feed. Tests may construct private instances.
  static FlightRecorder& global();

  /// Resize the ring; existing events are kept newest-first up to the new
  /// capacity.
  void set_capacity(std::size_t capacity);

  void record(FlightEventKind kind, std::string message);

  /// Number of events currently held (<= capacity).
  std::size_t size() const;
  void clear();

  /// The black box: {"provenance": ..., "reason": ..., "dumped_at": ...,
  /// "events": [{"seq", "t_seconds", "kind", "message"}, ...]} with events in
  /// chronological order. `t_seconds` is monotone time since process start.
  std::string dump_json(const std::string& reason) const;

  /// Write dump_json to `path` (atomic tmp+rename). Returns false on I/O
  /// failure.
  bool dump_to_file(const std::string& path, const std::string& reason) const;

  /// Arm automatic dumping on PIMNW_CHECK failure: the first check failure
  /// after arming writes the black box to `path` before the CheckError is
  /// thrown, then disarms (one dump per arm, so a cascade of rethrows does
  /// not rewrite the file). An empty path disarms.
  void arm_check_dump(const std::string& path);
  bool check_dump_armed() const;

  /// Called by the check-failure hook. Records a kFault event and, if armed,
  /// dumps and disarms. Returns the path dumped to (empty if not armed).
  std::string on_check_failure(const std::string& description);

 private:
  struct Event {
    std::uint64_t seq = 0;
    double t_seconds = 0.0;
    FlightEventKind kind = FlightEventKind::kNote;
    std::string message;
  };

  void record_locked(FlightEventKind kind, std::string message);
  std::vector<Event> chronological_locked() const;

  mutable std::mutex mutex_;
  std::vector<Event> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;   // ring write position
  std::uint64_t seq_ = 0;  // total events ever recorded
  std::string check_dump_path_;
};

/// Convenience: record into the global recorder.
void flight_record(FlightEventKind kind, std::string message);

}  // namespace pimnw
