#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace pimnw {
namespace metrics {
namespace {

std::atomic<bool> g_enabled{true};

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// CAS-add a double stored as its bit pattern in an atomic<uint64_t>.
void atomic_double_add(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      expected, double_bits(bits_double(expected) + delta),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

void format_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '\\') {
      os << "\\\\";
    } else if (c == '"') {
      os << "\\\"";
    } else if (c == '\n') {
      os << "\\n";
    } else {
      os << c;
    }
  }
}

Labels sorted_labels(const Labels& labels) {
  Labels out = labels;
  std::sort(out.begin(), out.end());
  return out;
}

/// Serialized signature used both as the series map key and (with an optional
/// extra label appended) as the exposition label block.
std::string label_block(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = std::string()) {
  if (labels.empty() && extra_key == nullptr) return std::string();
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) os << ',';
    first = false;
    os << key << "=\"";
    write_escaped(os, value);
    os << '"';
  }
  if (extra_key != nullptr) {
    if (!first) os << ',';
    os << extra_key << "=\"";
    write_escaped(os, extra_value);
    os << '"';
  }
  os << '}';
  return os.str();
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Counter

Counter::Shard& Counter::shard_for_thread() noexcept {
  // Cheap per-thread shard choice: hash a thread-local's address once. The
  // counter stays correct whatever the distribution; sharding only spreads
  // contention.
  static thread_local const std::size_t slot =
      [] {
        static std::atomic<std::size_t> next{0};
        return next.fetch_add(1, std::memory_order_relaxed);
      }() %
      kShards;
  return shards_[slot];
}

// ---------------------------------------------------------------------------
// Gauge

void Gauge::set(double v) noexcept {
  bits_.store(double_bits(v), std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept { atomic_double_add(bits_, delta); }

double Gauge::value() const noexcept {
  return bits_double(bits_.load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(HistogramOptions options)
    : options_(options),
      inv_log_growth_(1.0 / std::log(options.growth)),
      counts_(static_cast<std::size_t>(options.bucket_count) + 1) {
  PIMNW_CHECK(options_.min_bound > 0.0);
  PIMNW_CHECK(options_.growth > 1.0);
  PIMNW_CHECK(options_.bucket_count >= 1);
}

int Histogram::bucket_index(double value) const noexcept {
  if (!(value > options_.min_bound)) return 0;  // NaN and underflow -> 0
  // Smallest i with value <= min_bound * growth^i.
  const double exact = std::log(value / options_.min_bound) * inv_log_growth_;
  int idx = static_cast<int>(std::ceil(exact));
  if (idx < 0) idx = 0;
  if (idx > options_.bucket_count) idx = options_.bucket_count;
  // ceil(log(...)) can land one bucket low or high on exact boundaries
  // because of floating-point rounding; nudge until the invariant holds:
  // bucket i takes samples in (upper_bound(i-1), upper_bound(i)].
  while (idx < options_.bucket_count &&
         value > options_.min_bound * std::pow(options_.growth, idx)) {
    ++idx;
  }
  while (idx > 0 &&
         !(value > options_.min_bound * std::pow(options_.growth, idx - 1))) {
    --idx;
  }
  return idx;
}

void Histogram::record(double value) noexcept {
  counts_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_double_add(sum_bits_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.options = options_;
  snap.counts.resize(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = bits_double(sum_bits_.load(std::memory_order_relaxed));
  return snap;
}

double HistogramSnapshot::upper_bound(int i) const {
  return options.min_bound * std::pow(options.growth, i);
}

double HistogramSnapshot::quantile(double q) const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank (1-based) target.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      const int bucket = static_cast<int>(i);
      if (bucket >= options.bucket_count) {
        // Overflow bucket: report the last finite bound (a lower bound).
        return upper_bound(options.bucket_count - 1);
      }
      const double hi = upper_bound(bucket);
      const double lo = bucket == 0 ? 0.0 : upper_bound(bucket - 1);
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    seen += counts[i];
  }
  return upper_bound(options.bucket_count - 1);
}

HistogramSnapshot HistogramSnapshot::merge(const HistogramSnapshot& a,
                                           const HistogramSnapshot& b) {
  PIMNW_CHECK_MSG(a.options == b.options,
                  "histogram merge requires identical bucket options");
  PIMNW_CHECK(a.counts.size() == b.counts.size());
  HistogramSnapshot out;
  out.options = a.options;
  out.counts.resize(a.counts.size());
  for (std::size_t i = 0; i < a.counts.size(); ++i) {
    out.counts[i] = a.counts[i] + b.counts[i];
  }
  out.count = a.count + b.count;
  out.sum = a.sum + b.sum;
  return out;
}

// ---------------------------------------------------------------------------
// SloBurnWindow

SloBurnWindow::SloBurnWindow(double window_seconds, double objective,
                             int bucket_count)
    : bucket_seconds_(window_seconds / bucket_count), objective_(objective) {
  PIMNW_CHECK(window_seconds > 0.0);
  PIMNW_CHECK(bucket_count >= 1);
  PIMNW_CHECK(objective > 0.0 && objective < 1.0);
  ring_.resize(static_cast<std::size_t>(bucket_count));
}

void SloBurnWindow::record(double now_seconds, bool good,
                           std::uint64_t count) {
  const std::int64_t epoch =
      static_cast<std::int64_t>(std::floor(now_seconds / bucket_seconds_));
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& b = ring_[static_cast<std::size_t>(
      ((epoch % static_cast<std::int64_t>(ring_.size())) +
       static_cast<std::int64_t>(ring_.size())) %
      static_cast<std::int64_t>(ring_.size()))];
  if (b.epoch != epoch) {
    b.epoch = epoch;
    b.good = 0;
    b.bad = 0;
  }
  if (good) {
    b.good += count;
  } else {
    b.bad += count;
  }
}

void SloBurnWindow::sum_window(double now_seconds, std::uint64_t* good_out,
                               std::uint64_t* bad_out) const {
  const std::int64_t now_epoch =
      static_cast<std::int64_t>(std::floor(now_seconds / bucket_seconds_));
  const std::int64_t oldest =
      now_epoch - static_cast<std::int64_t>(ring_.size()) + 1;
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Bucket& b : ring_) {
    if (b.epoch >= oldest && b.epoch <= now_epoch) {
      good += b.good;
      bad += b.bad;
    }
  }
  *good_out = good;
  *bad_out = bad;
}

double SloBurnWindow::miss_ratio(double now_seconds) const {
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  sum_window(now_seconds, &good, &bad);
  const std::uint64_t total = good + bad;
  if (total == 0) return 0.0;
  return static_cast<double>(bad) / static_cast<double>(total);
}

double SloBurnWindow::burn_rate(double now_seconds) const {
  return miss_ratio(now_seconds) / (1.0 - objective_);
}

std::uint64_t SloBurnWindow::total(double now_seconds) const {
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  sum_window(now_seconds, &good, &bad);
  return good + bad;
}

std::uint64_t SloBurnWindow::bad(double now_seconds) const {
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  sum_window(now_seconds, &good, &bad);
  return bad;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumentation sites cache series pointers in
  // function-local statics and may fire during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Family& MetricsRegistry::family_locked(
    const std::string& name, Kind kind, const std::string& help,
    const HistogramOptions* options) {
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.kind = kind;
    family.help = help;
    if (options != nullptr) family.hist_options = *options;
  } else {
    PIMNW_CHECK_MSG(family.kind == kind,
                    "metric family re-registered with a different type: "
                        << name);
    if (options != nullptr) {
      PIMNW_CHECK_MSG(family.hist_options == *options,
                      "histogram family re-registered with different bucket "
                      "options: "
                          << name);
    }
  }
  return family;
}

MetricsRegistry::Series& MetricsRegistry::series_locked(Family& family,
                                                        const Labels& labels) {
  Labels sorted = sorted_labels(labels);
  const std::string key = label_block(sorted);
  auto [it, inserted] = family.series.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Series>();
    it->second->labels = std::move(sorted);
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_locked(name, Kind::kCounter, help, nullptr);
  Series& series = series_locked(family, labels);
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_locked(name, Kind::kGauge, help, nullptr);
  Series& series = series_locked(family, labels);
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const Labels& labels,
                                      HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_locked(name, Kind::kHistogram, help, &options);
  Series& series = series_locked(family, labels);
  if (!series.histogram) {
    series.histogram = std::make_unique<Histogram>(options);
  }
  return *series.histogram;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    os << "# HELP " << name << ' ' << family.help << '\n';
    os << "# TYPE " << name << ' '
       << (family.kind == Kind::kCounter
               ? "counter"
               : family.kind == Kind::kGauge ? "gauge" : "histogram")
       << '\n';
    for (const auto& [key, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          os << name << key << ' ' << series->counter->value() << '\n';
          break;
        case Kind::kGauge:
          os << name << key << ' ';
          format_double(os, series->gauge->value());
          os << '\n';
          break;
        case Kind::kHistogram: {
          const HistogramSnapshot snap = series->histogram->snapshot();
          std::uint64_t cumulative = 0;
          for (int i = 0; i < snap.options.bucket_count; ++i) {
            cumulative += snap.counts[static_cast<std::size_t>(i)];
            os << name << "_bucket"
               << label_block(series->labels, "le",
                              [&] {
                                std::ostringstream b;
                                format_double(b, snap.upper_bound(i));
                                return b.str();
                              }())
               << ' ' << cumulative << '\n';
          }
          cumulative += snap.counts.back();
          os << name << "_bucket"
             << label_block(series->labels, "le", "+Inf") << ' ' << cumulative
             << '\n';
          os << name << "_sum" << key << ' ';
          format_double(os, snap.sum);
          os << '\n';
          os << name << "_count" << key << ' ' << snap.count << '\n';
          break;
        }
      }
    }
  }
}

std::string MetricsRegistry::scrape() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

bool MetricsRegistry::write_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    write_prometheus(out);
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::size_t MetricsRegistry::family_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return families_.size();
}

}  // namespace metrics
}  // namespace pimnw
