#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace pimnw {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'e' && c != 'x' && c != ',') {
      return false;
    }
  }
  return true;
}

}  // namespace

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  PIMNW_CHECK_MSG(header_.empty() || cells.size() == header_.size(),
                  "row width " << cells.size() << " != header width "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::vector<std::string>> all;
  if (!header_.empty()) all.push_back(header_);
  for (const auto& r : rows_) all.push_back(r);
  std::size_t cols = 0;
  for (const auto& r : all) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& r : all) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      os << "| ";
      if (looks_numeric(cell)) {
        os << std::setw(static_cast<int>(width[c])) << std::right << cell;
      } else {
        os << std::setw(static_cast<int>(width[c])) << std::left << cell;
      }
      os << ' ';
    }
    os << "|\n";
  };
  if (!header_.empty()) {
    emit(header_);
    for (std::size_t c = 0; c < cols; ++c) {
      os << "|" << std::string(width[c] + 2, '-');
    }
    os << "|\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print() const { std::cout << render() << std::flush; }

std::string fmt_seconds(double s) {
  std::ostringstream os;
  if (s >= 100) {
    os << std::fixed << std::setprecision(0) << s;
  } else if (s >= 1) {
    os << std::fixed << std::setprecision(1) << s;
  } else {
    os << std::fixed << std::setprecision(3) << s;
  }
  return os.str();
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string fmt_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c != 0 && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace pimnw
