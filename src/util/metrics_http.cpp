#include "util/metrics_http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>

#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace pimnw {
namespace metrics {
namespace {

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing to do
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(int code, const char* status,
                          const char* content_type, const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << code << ' ' << status << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n"
     << "\r\n"
     << body;
  return os.str();
}

/// Path component of "GET /metrics HTTP/1.1"; empty on parse failure.
std::string request_path(const std::string& request) {
  const std::size_t method_end = request.find(' ');
  if (method_end == std::string::npos) return std::string();
  const std::size_t path_end = request.find(' ', method_end + 1);
  if (path_end == std::string::npos) return std::string();
  return request.substr(method_end + 1, path_end - method_end - 1);
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::global()) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool MetricsHttpServer::start(int port) {
  if (listen_fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    PIMNW_WARN("metrics endpoint disabled: socket() failed: "
               << std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    PIMNW_WARN("metrics endpoint disabled: cannot bind 127.0.0.1:"
               << port << ": " << std::strerror(errno));
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void MetricsHttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR) continue;
      break;  // listener socket gone
    }
    char buf[2048];
    const ssize_t n = ::recv(conn, buf, sizeof(buf) - 1, 0);
    if (n > 0) {
      buf[n] = '\0';
      const std::string path = request_path(buf);
      if (path == "/metrics") {
        send_all(conn, http_response(200, "OK",
                                     "text/plain; version=0.0.4",
                                     registry_->scrape()));
      } else if (path == "/healthz") {
        send_all(conn, http_response(200, "OK", "text/plain", "ok\n"));
      } else {
        send_all(conn,
                 http_response(404, "Not Found", "text/plain", "not found\n"));
      }
    }
    ::close(conn);
  }
}

void MetricsHttpServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  // shutdown() wakes the blocking accept(); close() alone is not reliable for
  // that on Linux.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

}  // namespace metrics
}  // namespace pimnw
