#include "util/trace.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "util/logging.hpp"

namespace pimnw::trace {
namespace {

std::atomic<bool> g_enabled{false};

/// One thread's event buffer. Single writer (the owning thread); read only
/// by the exporter, which the API contract keeps off the recording window.
struct Buffer {
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Buffer>> buffers;      // all threads, ever
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> lanes;
  std::uint32_t next_tid = 0;
  std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return *r;
}

Buffer& local_buffer() {
  thread_local Buffer* buf = [] {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.push_back(std::make_unique<Buffer>());
    r.buffers.back()->tid = r.next_tid++;
    return r.buffers.back().get();
  }();
  return *buf;
}

void escape_json(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out << hex;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  (void)registry();  // pin the origin before the first event
  g_enabled.store(on, std::memory_order_relaxed);
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - registry().origin)
      .count();
}

void set_thread_name(const std::string& name) {
  // Recorded even while tracing is off: threads (pool workers) name their
  // lane once at startup, typically before anyone flips the toggle.
  Registry& r = registry();
  const std::uint32_t tid = local_buffer().tid;
  std::lock_guard<std::mutex> lock(r.mutex);
  r.lanes[{kHostPid, tid}] = name;
}

void set_modeled_lane_name(std::uint32_t tid, const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.lanes[{kModeledPid, tid}] = name;
}

void complete_span(std::string name, double ts_us, double dur_us) {
  if (!enabled()) return;
  Event e;
  e.name = std::move(name);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  Buffer& buf = local_buffer();
  e.tid = buf.tid;
  buf.events.push_back(std::move(e));
}

void counter(std::string name, double value) {
  if (!enabled()) return;
  Event e;
  e.name = std::move(name);
  e.ts_us = now_us();
  e.phase = 'C';
  e.value = value;
  Buffer& buf = local_buffer();
  e.tid = buf.tid;
  buf.events.push_back(std::move(e));
}

void instant(std::string name) {
  if (!enabled()) return;
  Event e;
  e.name = std::move(name);
  e.ts_us = now_us();
  e.phase = 'i';
  Buffer& buf = local_buffer();
  e.tid = buf.tid;
  buf.events.push_back(std::move(e));
}

void modeled_span(std::string name, std::uint32_t tid, double ts_us,
                  double dur_us, std::uint64_t cycles) {
  if (!enabled()) return;
  Event e;
  e.name = std::move(name);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = kModeledPid;
  e.tid = tid;
  e.cycles = cycles;
  local_buffer().events.push_back(std::move(e));
}

void modeled_counter(std::string name, double ts_us, double value) {
  if (!enabled()) return;
  Event e;
  e.name = std::move(name);
  e.ts_us = ts_us;
  e.phase = 'C';
  e.value = value;
  e.pid = kModeledPid;
  e.tid = 0;
  local_buffer().events.push_back(std::move(e));
}

std::vector<Event> snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<Event> all;
  for (const auto& buf : r.buffers) {
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  return all;
}

std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>, std::string>>
lane_names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return {r.lanes.begin(), r.lanes.end()};
}

void clear() {
  // Events only: lane names belong to long-lived threads (a pool worker
  // names its lane once, at startup) and stay valid across runs.
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& buf : r.buffers) buf->events.clear();
}

void write_json(std::ostream& out) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  sep();
  out << R"({"ph":"M","pid":)" << kHostPid
      << R"x(,"tid":0,"name":"process_name","args":{"name":"host pipeline (wall clock)"}})x";
  sep();
  out << R"({"ph":"M","pid":)" << kHostPid
      << R"(,"tid":0,"name":"process_sort_index","args":{"sort_index":1}})";
  sep();
  out << R"({"ph":"M","pid":)" << kModeledPid
      << R"x(,"tid":0,"name":"process_name","args":{"name":"modeled PiM timeline (350 MHz)"}})x";
  sep();
  out << R"({"ph":"M","pid":)" << kModeledPid
      << R"(,"tid":0,"name":"process_sort_index","args":{"sort_index":2}})";
  for (const auto& [key, name] : lane_names()) {
    sep();
    out << R"({"ph":"M","pid":)" << key.first << R"(,"tid":)" << key.second
        << R"(,"name":"thread_name","args":{"name":")";
    escape_json(out, name);
    out << R"("}})";
    sep();
    out << R"({"ph":"M","pid":)" << key.first << R"(,"tid":)" << key.second
        << R"(,"name":"thread_sort_index","args":{"sort_index":)"
        << key.second << "}}";
  }
  for (const Event& e : snapshot()) {
    sep();
    out << R"({"ph":")" << e.phase << R"(","pid":)" << e.pid << R"(,"tid":)"
        << e.tid << R"(,"ts":)" << e.ts_us << R"(,"name":")";
    escape_json(out, e.name);
    out << '"';
    if (e.phase == 'X') out << R"(,"dur":)" << e.dur_us;
    if (e.phase == 'C') out << R"(,"args":{"value":)" << e.value << '}';
    if (e.phase == 'i') out << R"(,"s":"t")";
    if (e.phase == 'X' && e.cycles != 0) {
      out << R"(,"args":{"cycles":)" << e.cycles << '}';
    }
    out << '}';
  }
  out << "\n]}\n";
}

bool write_json_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    PIMNW_WARN("trace: cannot open " << path << " for writing");
    return false;
  }
  write_json(out);
  out.flush();
  if (!out) {
    PIMNW_WARN("trace: short write to " << path);
    return false;
  }
  return true;
}

}  // namespace pimnw::trace
