#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace pimnw {
namespace {

// Work-stealing activity (DESIGN.md §17). The counters double the pool's own
// relaxed atomics into the scrapeable registry; one extra relaxed add per
// task when telemetry is on, nothing when off.
struct PoolSeries {
  metrics::Counter& executed;
  metrics::Counter& stolen;
  metrics::Counter& injected;
};

PoolSeries& pool_series() {
  auto& reg = metrics::MetricsRegistry::global();
  static PoolSeries series{
      reg.counter("pimnw_pool_tasks_executed_total",
                  "Tasks executed by pool workers and helping callers"),
      reg.counter("pimnw_pool_tasks_stolen_total",
                  "Tasks acquired by stealing from another worker's deque"),
      reg.counter("pimnw_pool_tasks_injected_total",
                  "Tasks taken from the outside-submitter injector queue"),
  };
  return series;
}

}  // namespace

namespace {

// Which pool (if any) the current thread is a worker of, and its index in
// that pool. Plain thread_locals: each worker thread writes its own pair
// once at startup.
thread_local ThreadPool* tl_pool = nullptr;
thread_local int tl_index = -1;

/// CPU quota of the cgroup this process runs in, in whole cores (rounded
/// up), or 0 when unlimited/undetectable. Checks cgroup v2 (cpu.max:
/// "<quota|max> <period>") then v1 (cfs_quota_us / cfs_period_us, -1 =
/// unlimited). hardware_concurrency() reports the host's cores even inside
/// a 1-core container, so ignoring the quota oversubscribes every pool.
std::size_t cgroup_cpu_limit() {
  std::ifstream v2("/sys/fs/cgroup/cpu.max");
  if (v2) {
    std::string quota;
    double period = 0.0;
    if (v2 >> quota >> period && quota != "max" && period > 0) {
      const double q = std::stod(quota);
      if (q > 0) {
        return static_cast<std::size_t>(std::ceil(q / period));
      }
    }
    return 0;
  }
  std::ifstream quota_f("/sys/fs/cgroup/cpu/cpu.cfs_quota_us");
  std::ifstream period_f("/sys/fs/cgroup/cpu/cpu.cfs_period_us");
  double quota = 0.0;
  double period = 0.0;
  if (quota_f >> quota && period_f >> period && quota > 0 && period > 0) {
    return static_cast<std::size_t>(std::ceil(quota / period));
  }
  return 0;
}

}  // namespace

std::size_t default_worker_threads() {
  std::size_t threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t limit = cgroup_cpu_limit();
  if (limit > 0) threads = std::min(threads, limit);
  return threads;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = default_worker_threads();
  }
  deques_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<detail::TaskDeque>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  parked_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::worker_index() const {
  return tl_pool == this ? tl_index : -1;
}

void ThreadPool::enqueue(Task* task) {
  const int index = worker_index();
  pending_.fetch_add(1, std::memory_order_seq_cst);
  if (index >= 0) {
    deques_[static_cast<std::size_t>(index)]->push(task);
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    injector_.push_back(task);
  }
  // Wake one sleeper if there might be one. The sleeper's wait predicate
  // reads pending_ under mutex_, and sleepers_ is incremented under mutex_
  // before the predicate is evaluated, so either the sleeper sees our
  // pending_ increment or we see its sleepers_ increment — never a lost
  // wakeup. Notifying under the lock closes the remaining window.
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_one();
  }
  // Same protocol for parked orchestrators: their predicate reads pending_
  // under mutex_ after bumping parked_, so either we see parked_ > 0 here
  // or they see our pending_ increment.
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    parked_cv_.notify_all();
  }
}

void ThreadPool::park(const std::function<bool()>& wake) {
  std::unique_lock<std::mutex> lock(mutex_);
  parked_.fetch_add(1, std::memory_order_seq_cst);
  parked_cv_.wait(lock, [this, &wake] {
    return stop_ || pending_.load(std::memory_order_seq_cst) > 0 || wake();
  });
  parked_.fetch_sub(1, std::memory_order_seq_cst);
}

void ThreadPool::unpark_all() {
  // Taking the mutex orders this notify against a parker that has bumped
  // parked_ but not yet evaluated its predicate; completions are rare (once
  // per batch / ticket), so the lock is not a hot path.
  std::lock_guard<std::mutex> lock(mutex_);
  parked_cv_.notify_all();
}

void ThreadPool::post(std::function<void()> fn) {
  enqueue(new Task(std::move(fn)));
}

ThreadPool::Task* ThreadPool::acquire(int index) {
  const std::size_t n = deques_.size();
  Task* task = nullptr;
  if (index >= 0) {
    task = deques_[static_cast<std::size_t>(index)]->pop();
  }
  if (task == nullptr) {
    // Steal round-robin starting after our own slot (outside threads start
    // at slot 0). FIFO steals take the oldest — for LPT-descending job
    // sequences that is the heaviest still queued, the best steal.
    const std::size_t start = index >= 0 ? static_cast<std::size_t>(index) : 0;
    for (std::size_t k = 1; k <= n && task == nullptr; ++k) {
      task = deques_[(start + k) % n]->steal();
    }
    if (task != nullptr) {
      stolen_.fetch_add(1, std::memory_order_relaxed);
      if (metrics::enabled()) pool_series().stolen.add(1);
    }
  }
  if (task == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!injector_.empty()) {
      task = injector_.front();
      injector_.pop_front();
      injected_.fetch_add(1, std::memory_order_relaxed);
      if (metrics::enabled()) pool_series().injected.add(1);
    }
  }
  if (task != nullptr) {
    pending_.fetch_sub(1, std::memory_order_seq_cst);
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (metrics::enabled()) pool_series().executed.add(1);
  }
  return task;
}

bool ThreadPool::run_one(int index) {
  Task* task = acquire(index);
  if (task == nullptr) return false;
  try {
    (*task)();
  } catch (const std::exception& e) {
    // Only post()ed tasks can get here (submit wraps everything in a
    // packaged_task, parallel_for catches per iteration). post() promises
    // not to throw; surface the broken promise without killing the worker.
    PIMNW_WARN("task posted to ThreadPool threw: " << e.what());
  } catch (...) {
    PIMNW_WARN("task posted to ThreadPool threw a non-std exception");
  }
  delete task;
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_index = static_cast<int>(index);
  trace::set_thread_name("worker " + std::to_string(index));
  while (true) {
    if (run_one(static_cast<int>(index))) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) {
      if (pending_.load(std::memory_order_seq_cst) == 0) return;
      continue;  // drain: tasks are still queued somewhere
    }
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (stop_ && pending_.load(std::memory_order_seq_cst) == 0) return;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  struct Sweep {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };
  auto sweep = std::make_shared<Sweep>();

  // One claiming loop, shared by the caller and the helper tasks. `fn` is
  // only captured by reference in the caller's own loop; helpers capture a
  // copy-free pointer since parallel_for blocks until done == n. The final
  // iteration's completion unparks any waiter sleeping below (and any
  // parked orchestrator — spurious wakes are part of park's contract).
  const auto* fn_ptr = &fn;
  auto drain = [this, sweep, fn_ptr, n] {
    for (;;) {
      const std::size_t i =
          sweep->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*fn_ptr)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(sweep->error_mutex);
        if (!sweep->error) sweep->error = std::current_exception();
      }
      if (sweep->done.fetch_add(1, std::memory_order_seq_cst) + 1 == n) {
        unpark_all();
      }
    }
  };

  const std::size_t helpers = std::min(size(), n);
  for (std::size_t h = 0; h < helpers; ++h) {
    post(drain);
  }
  drain();  // the caller participates

  // Iterations may still be running on (or queued for) workers. Help
  // execute arbitrary pool tasks while waiting: if this parallel_for was
  // itself issued from inside a pool task, refusing to help could leave a
  // fully-blocked pool (every worker waiting on someone else's helpers).
  // When the queues run dry, park on the pool's sleep/notify hook instead
  // of burning a core on yield-spins — drain's completion (or any enqueue)
  // wakes the thread the moment there is something to do. This is what lets
  // a worker that owns a rank-pipeline job block on a nested DPU sweep
  // without starving the pool (DESIGN.md §15).
  const int index = worker_index();
  while (sweep->done.load(std::memory_order_seq_cst) < n) {
    if (!run_one(index)) {
      park([&sweep, n] {
        return sweep->done.load(std::memory_order_seq_cst) >= n;
      });
    }
  }
  if (sweep->error) std::rethrow_exception(sweep->error);
}

void ThreadPool::parallel_for_static(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pimnw
