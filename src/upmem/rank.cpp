#include "upmem/rank.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace pimnw::upmem {

Rank::Rank() = default;

Dpu& Rank::dpu(int index) {
  PIMNW_CHECK_MSG(index >= 0 && index < kDpusPerRank,
                  "DPU index " << index << " out of rank");
  return dpus_[static_cast<std::size_t>(index)];
}

const Dpu& Rank::dpu(int index) const {
  PIMNW_CHECK_MSG(index >= 0 && index < kDpusPerRank,
                  "DPU index " << index << " out of rank");
  return dpus_[static_cast<std::size_t>(index)];
}

Rank::LaunchStats Rank::launch(
    const std::function<std::unique_ptr<DpuProgram>(int)>& make_program,
    int pools, int tasklets_per_pool) {
  LaunchStats stats;
  stats.fastest_dpu_seconds = -1.0;
  double util_sum = 0.0;
  double mram_sum = 0.0;

  // DPUs are independent by construction (each owns its bank), so the
  // simulation executes them on the host's worker threads; results and
  // modeled times are bit-identical to a serial run. Programs are created
  // up-front because make_program may not be thread-safe.
  std::array<std::unique_ptr<DpuProgram>, kDpusPerRank> programs;
  for (int d = 0; d < kDpusPerRank; ++d) {
    programs[static_cast<std::size_t>(d)] = make_program(d);
  }
  std::array<DpuCostModel::Summary, kDpusPerRank> summaries;
  ThreadPool& pool = global_pool();
  if (pool.size() > 1) {
    pool.parallel_for(kDpusPerRank, [&](std::size_t d) {
      if (!programs[d]) return;
      summaries[d] =
          dpus_[d].launch(*programs[d], pools, tasklets_per_pool);
    });
  } else {
    for (std::size_t d = 0; d < kDpusPerRank; ++d) {
      if (!programs[d]) continue;
      summaries[d] =
          dpus_[d].launch(*programs[d], pools, tasklets_per_pool);
    }
  }

  for (int d = 0; d < kDpusPerRank; ++d) {
    if (!programs[static_cast<std::size_t>(d)]) continue;
    const DpuCostModel::Summary& summary =
        summaries[static_cast<std::size_t>(d)];
    stats.max_cycles = std::max(stats.max_cycles, summary.cycles);
    stats.seconds = std::max(stats.seconds, summary.seconds);
    if (summary.instructions > 0) {
      if (stats.fastest_dpu_seconds < 0 ||
          summary.seconds < stats.fastest_dpu_seconds) {
        stats.fastest_dpu_seconds = summary.seconds;
      }
      util_sum += summary.pipeline_utilization;
      mram_sum += summary.mram_overhead;
      ++stats.active_dpus;
    }
    stats.total_instructions += summary.instructions;
    stats.total_dma_bytes += summary.dma_bytes;
  }
  if (stats.active_dpus > 0) {
    stats.mean_pipeline_utilization = util_sum / stats.active_dpus;
    stats.mean_mram_overhead = mram_sum / stats.active_dpus;
  }
  if (stats.fastest_dpu_seconds < 0) stats.fastest_dpu_seconds = 0.0;
  return stats;
}

}  // namespace pimnw::upmem
