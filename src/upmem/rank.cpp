#include "upmem/rank.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace pimnw::upmem {

Rank::Rank() = default;

Dpu& Rank::dpu(int index) {
  PIMNW_CHECK_MSG(index >= 0 && index < kDpusPerRank,
                  "DPU index " << index << " out of rank");
  return dpus_[static_cast<std::size_t>(index)];
}

const Dpu& Rank::dpu(int index) const {
  PIMNW_CHECK_MSG(index >= 0 && index < kDpusPerRank,
                  "DPU index " << index << " out of rank");
  return dpus_[static_cast<std::size_t>(index)];
}

Rank::LaunchStats Rank::launch(
    const std::function<std::unique_ptr<DpuProgram>(int)>& make_program,
    int pools, int tasklets_per_pool, ThreadPool* pool,
    bool static_chunking) {
  // DPUs are independent by construction (each owns its bank), so the
  // simulation executes them on the host's worker threads; results and
  // modeled times are bit-identical to a serial run. Programs are created
  // up-front because make_program may not be thread-safe.
  std::array<std::unique_ptr<DpuProgram>, kDpusPerRank> programs;
  std::array<bool, kDpusPerRank> ran{};
  for (int d = 0; d < kDpusPerRank; ++d) {
    programs[static_cast<std::size_t>(d)] = make_program(d);
    ran[static_cast<std::size_t>(d)] =
        programs[static_cast<std::size_t>(d)] != nullptr;
  }
  std::array<DpuCostModel::Summary, kDpusPerRank> summaries;
  ThreadPool& tp = pool != nullptr ? *pool : global_pool();
  const auto body = [&](std::size_t d) {
    if (!programs[d]) return;
    PIMNW_TRACE_SPAN("sim dpu " + std::to_string(d));
    summaries[d] = dpus_[d].launch(*programs[d], pools, tasklets_per_pool);
  };
  if (tp.size() > 1) {
    if (static_chunking) {
      tp.parallel_for_static(kDpusPerRank, body);
    } else {
      tp.parallel_for(kDpusPerRank, body);
    }
  } else {
    for (std::size_t d = 0; d < kDpusPerRank; ++d) body(d);
  }
  return aggregate(summaries, ran);
}

Rank::LaunchStats Rank::aggregate(
    const std::array<DpuCostModel::Summary, kDpusPerRank>& summaries,
    const std::array<bool, kDpusPerRank>& ran) {
  LaunchStats stats;
  stats.fastest_dpu_seconds = -1.0;
  double util_sum = 0.0;
  double mram_sum = 0.0;
  for (int d = 0; d < kDpusPerRank; ++d) {
    if (!ran[static_cast<std::size_t>(d)]) continue;
    const DpuCostModel::Summary& summary =
        summaries[static_cast<std::size_t>(d)];
    stats.max_cycles = std::max(stats.max_cycles, summary.cycles);
    stats.seconds = std::max(stats.seconds, summary.seconds);
    if (summary.instructions > 0) {
      if (stats.fastest_dpu_seconds < 0 ||
          summary.seconds < stats.fastest_dpu_seconds) {
        stats.fastest_dpu_seconds = summary.seconds;
      }
      util_sum += summary.pipeline_utilization;
      mram_sum += summary.mram_overhead;
      ++stats.active_dpus;
    }
    stats.total_instructions += summary.instructions;
    stats.total_dma_bytes += summary.dma_bytes;
  }
  if (stats.active_dpus > 0) {
    stats.mean_pipeline_utilization = util_sum / stats.active_dpus;
    stats.mean_mram_overhead = mram_sum / stats.active_dpus;
  }
  if (stats.fastest_dpu_seconds < 0) stats.fastest_dpu_seconds = 0.0;
  return stats;
}

}  // namespace pimnw::upmem
