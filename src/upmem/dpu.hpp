// One simulated DPU: a 64 MB MRAM bank plus the execution state needed to
// run a kernel (WRAM scratchpad, cost model of the last launch).
#pragma once

#include <memory>

#include "upmem/cost_model.hpp"
#include "upmem/mram.hpp"
#include "upmem/wram.hpp"

namespace pimnw::upmem {

/// Execution context handed to a kernel: the paper's "DPU program" sees
/// exactly this — its bank, its scratchpad, and tasklet cost accounting.
struct DpuContext {
  Mram& mram;
  Wram& wram;
  DpuCostModel& cost;

  /// DMA transfer MRAM -> WRAM (blocks the issuing tasklet; charge it to the
  /// right pool via `cost.pool(p).dma(bytes)` — this helper validates the
  /// shape and moves the bytes).
  void mram_read(std::uint64_t mram_addr, std::uint64_t wram_addr,
                 std::uint64_t bytes);
  /// DMA transfer WRAM -> MRAM.
  void mram_write(std::uint64_t wram_addr, std::uint64_t mram_addr,
                  std::uint64_t bytes);
};

/// Kernel interface. A program instance is created per launch per DPU and
/// `run` once; tasklet-level parallelism is expressed through the cost model
/// (see cost_model.hpp) while the computation itself runs to completion.
class DpuProgram {
 public:
  virtual ~DpuProgram() = default;
  virtual void run(DpuContext& ctx) = 0;
};

class Dpu {
 public:
  Dpu() = default;

  Mram& mram() { return mram_; }
  const Mram& mram() const { return mram_; }

  /// Execute `program` with a fresh WRAM and a fresh cost model of
  /// `pools` x `tasklets_per_pool`. Returns the launch summary; it is also
  /// retained as last_summary().
  DpuCostModel::Summary launch(DpuProgram& program, int pools,
                               int tasklets_per_pool);

  /// As above, but reuse a caller-owned WRAM scratchpad instead of
  /// constructing one per launch (the execution engine keeps one per worker
  /// arena). The scratchpad is reset() first — zeroed and emptied — so the
  /// program observes exactly the fresh-WRAM state of the other overload.
  DpuCostModel::Summary launch(DpuProgram& program, int pools,
                               int tasklets_per_pool, Wram& wram);

  const DpuCostModel::Summary& last_summary() const { return last_summary_; }

  /// Phase-attributed profile of the last launch (DESIGN.md §12). Retained
  /// alongside last_summary(); reading it cannot change modeled numbers.
  const DpuPhaseProfile& last_profile() const { return last_profile_; }

 private:
  Mram mram_;
  DpuCostModel::Summary last_summary_;
  DpuPhaseProfile last_profile_;
};

}  // namespace pimnw::upmem
