// A rank of 64 DPUs — the granularity at which the host transfers data,
// launches kernels and synchronises (paper §2.1: "the granularity of access
// to DPUs is the rank").
#pragma once

#include <array>
#include <functional>
#include <memory>

#include "upmem/dpu.hpp"

namespace pimnw {
class ThreadPool;
}

namespace pimnw::upmem {

class Rank {
 public:
  Rank();

  Dpu& dpu(int index);
  const Dpu& dpu(int index) const;
  static constexpr int size() { return kDpusPerRank; }

  struct LaunchStats {
    /// The rank completes when its slowest DPU does (the hardware barrier
    /// the load balancer of §4.1.2 fights against).
    double seconds = 0.0;
    double fastest_dpu_seconds = 0.0;
    std::uint64_t max_cycles = 0;
    std::uint64_t total_instructions = 0;
    std::uint64_t total_dma_bytes = 0;
    double mean_pipeline_utilization = 0.0;
    double mean_mram_overhead = 0.0;
    int active_dpus = 0;  // DPUs whose kernel did non-trivial work
  };

  /// Launch one kernel instance per DPU. `make_program(dpu_index)` may
  /// return nullptr to leave a DPU idle. Execution order across DPUs is
  /// unspecified (they are independent by construction); stats aggregate the
  /// cost models exactly as the rank-level barrier would. `pool` selects the
  /// worker pool (nullptr = global_pool()); `static_chunking` reproduces the
  /// pre-work-stealing contiguous-chunk schedule (wall-clock only — results
  /// are bit-identical either way; engine_test pins this).
  LaunchStats launch(
      const std::function<std::unique_ptr<DpuProgram>(int)>& make_program,
      int pools, int tasklets_per_pool, ThreadPool* pool = nullptr,
      bool static_chunking = false);

  /// Fold per-DPU cost summaries into LaunchStats in fixed DPU order,
  /// exactly as launch() does behind its barrier. `ran[d]` marks DPUs that
  /// executed a program; their summaries are the only ones read. Extracted
  /// so the execution engine's in-order commit stage aggregates out-of-order
  /// DPU results bit-identically to the barrier schedule.
  static LaunchStats aggregate(
      const std::array<DpuCostModel::Summary, kDpusPerRank>& summaries,
      const std::array<bool, kDpusPerRank>& ran);

 private:
  std::array<Dpu, kDpusPerRank> dpus_;
};

}  // namespace pimnw::upmem
