// Simulated 64 KB WRAM scratchpad with a bump allocator.
//
// The real DPU program lays its buffers out at link time; kernels here carve
// them from a bump allocator at launch, which gives the same hard property:
// if the working set exceeds 64 KB the program cannot run. Allocation
// failures throw, turning silent paper constraints ("three matrices do not
// fit", §3.3) into enforced ones.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "upmem/arch.hpp"

namespace pimnw::upmem {

class Wram {
 public:
  explicit Wram(std::uint64_t capacity = kWramBytes)
      : capacity_(capacity), data_(capacity, 0) {}

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return next_; }
  std::uint64_t free_bytes() const { return capacity_ - next_; }

  /// Allocate `bytes` (8-byte aligned, like the DPU toolchain's default).
  /// Returns the WRAM address. Throws CheckError when the scratchpad is full.
  std::uint64_t alloc(std::uint64_t bytes);

  /// Typed view over an allocated region.
  template <typename T>
  std::span<T> view(std::uint64_t addr, std::uint64_t count) {
    bounds(addr, count * sizeof(T));
    return std::span<T>(reinterpret_cast<T*>(data_.data() + addr), count);
  }

  std::uint8_t* raw(std::uint64_t addr, std::uint64_t bytes) {
    bounds(addr, bytes);
    return data_.data() + addr;
  }
  const std::uint8_t* raw(std::uint64_t addr, std::uint64_t bytes) const {
    bounds(addr, bytes);
    return data_.data() + addr;
  }

  /// Convenience: allocate and return a typed span in one step.
  template <typename T>
  std::span<T> alloc_array(std::uint64_t count) {
    return view<T>(alloc(count * sizeof(T)), count);
  }

  /// Release everything (between kernel launches).
  void reset();

 private:
  void bounds(std::uint64_t addr, std::uint64_t bytes) const;

  std::uint64_t capacity_;
  std::uint64_t next_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace pimnw::upmem
