#include "upmem/system.hpp"

#include "util/check.hpp"

namespace pimnw::upmem {

PimSystem::PimSystem(int nr_ranks) {
  PIMNW_CHECK_MSG(nr_ranks >= 1, "need at least one rank");
  ranks_.resize(static_cast<std::size_t>(nr_ranks));
}

Rank& PimSystem::rank(int r) {
  PIMNW_CHECK_MSG(r >= 0 && r < nr_ranks(), "rank " << r << " out of range");
  return ranks_[static_cast<std::size_t>(r)];
}

const Rank& PimSystem::rank(int r) const {
  PIMNW_CHECK_MSG(r >= 0 && r < nr_ranks(), "rank " << r << " out of range");
  return ranks_[static_cast<std::size_t>(r)];
}

TransferStats PimSystem::copy_to_rank(
    int r, const std::vector<std::vector<std::uint8_t>>& per_dpu,
    std::uint64_t mram_offset) {
  PIMNW_CHECK_MSG(per_dpu.size() <= static_cast<std::size_t>(kDpusPerRank),
                  "more buffers than DPUs in a rank");
  Rank& target = rank(r);
  TransferStats stats;
  for (std::size_t d = 0; d < per_dpu.size(); ++d) {
    if (per_dpu[d].empty()) continue;
    target.dpu(static_cast<int>(d))
        .mram()
        .write(mram_offset, per_dpu[d]);
    stats.bytes += per_dpu[d].size();
  }
  stats.seconds = host_transfer_seconds(stats.bytes);
  return stats;
}

TransferStats PimSystem::copy_from_rank(
    int r, const std::vector<std::uint64_t>& bytes_per_dpu,
    std::uint64_t mram_offset, std::vector<std::vector<std::uint8_t>>& out) {
  PIMNW_CHECK_MSG(bytes_per_dpu.size() <= static_cast<std::size_t>(kDpusPerRank),
                  "more buffers than DPUs in a rank");
  Rank& source = rank(r);
  out.assign(bytes_per_dpu.size(), {});
  TransferStats stats;
  for (std::size_t d = 0; d < bytes_per_dpu.size(); ++d) {
    if (bytes_per_dpu[d] == 0) continue;
    out[d].resize(bytes_per_dpu[d]);
    source.dpu(static_cast<int>(d)).mram().read(mram_offset, out[d]);
    stats.bytes += bytes_per_dpu[d];
  }
  stats.seconds = host_transfer_seconds(stats.bytes);
  return stats;
}

TransferStats PimSystem::broadcast_all(std::span<const std::uint8_t> buffer,
                                       std::uint64_t mram_offset) {
  TransferStats stats;
  for (Rank& r : ranks_) {
    for (int d = 0; d < kDpusPerRank; ++d) {
      r.dpu(d).mram().write(mram_offset, buffer);
    }
  }
  stats.bytes = buffer.size() * static_cast<std::uint64_t>(nr_dpus());
  stats.seconds = host_transfer_seconds(stats.bytes);
  return stats;
}

}  // namespace pimnw::upmem
