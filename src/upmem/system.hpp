// The whole PiM server: N ranks of 64 DPUs plus the host<->MRAM transfer
// model. Mirrors the UPMEM SDK host API surface the paper's host program
// uses: allocate ranks, copy per-DPU buffers, broadcast, launch, sync.
//
// Timing: every operation returns its modeled duration; the orchestrator in
// src/core composes those durations on an event timeline (transfers to a
// rank serialise with that rank's execution — §2.1: the host cannot touch
// MRAM while the DPUs run — while different ranks overlap freely).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "upmem/rank.hpp"

namespace pimnw::upmem {

/// Modeled cost of one host<->MRAM transfer.
struct TransferStats {
  std::uint64_t bytes = 0;
  double seconds = 0.0;
};

class PimSystem {
 public:
  /// `nr_ranks` ranks of 64 DPUs (the paper's server: 40; Tables 2–6 sweep
  /// 10/20/40).
  explicit PimSystem(int nr_ranks);

  int nr_ranks() const { return static_cast<int>(ranks_.size()); }
  int nr_dpus() const { return nr_ranks() * kDpusPerRank; }

  Rank& rank(int r);
  const Rank& rank(int r) const;

  /// Modeled duration of moving `bytes` between host RAM and MRAM over the
  /// DDR bus (§4.1.1: ~60 GB/s aggregate).
  static double host_transfer_seconds(std::uint64_t bytes) {
    return static_cast<double>(bytes) / kHostXferBytesPerSec;
  }

  /// Modeled cost of a transfer totalling `bytes`, without moving anything —
  /// the execution engine simulates DPUs on per-worker scratch banks and
  /// charges transfers through this (identical arithmetic to copy_to_rank /
  /// copy_from_rank on the same byte count).
  static TransferStats transfer_stats(std::uint64_t bytes) {
    return {bytes, host_transfer_seconds(bytes)};
  }

  /// Modeled cost of broadcasting a `buffer_bytes` buffer to `nr_dpus` DPUs
  /// (each bank is written individually on the wire, as broadcast_all does).
  static TransferStats broadcast_stats(std::uint64_t buffer_bytes,
                                       int nr_dpus) {
    return transfer_stats(buffer_bytes * static_cast<std::uint64_t>(nr_dpus));
  }

  /// Write one buffer per DPU of rank `r` at `mram_offset` (buffers may have
  /// different sizes; empty buffers skip their DPU).
  TransferStats copy_to_rank(int r,
                             const std::vector<std::vector<std::uint8_t>>& per_dpu,
                             std::uint64_t mram_offset);

  /// Read `bytes_per_dpu[d]` bytes from each DPU of rank `r` at
  /// `mram_offset` into `out[d]`.
  TransferStats copy_from_rank(int r,
                               const std::vector<std::uint64_t>& bytes_per_dpu,
                               std::uint64_t mram_offset,
                               std::vector<std::vector<std::uint8_t>>& out);

  /// Write the same buffer to every DPU of every rank (the 16S experiment's
  /// broadcast, §5.3). On the wire each bank is still written individually,
  /// so the modeled bytes are buffer-size x nr_dpus.
  TransferStats broadcast_all(std::span<const std::uint8_t> buffer,
                              std::uint64_t mram_offset);

 private:
  std::vector<Rank> ranks_;
};

}  // namespace pimnw::upmem
