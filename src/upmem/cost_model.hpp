// DPU timing model.
//
// The simulator is functional (kernels really compute) but time comes from
// instruction/DMA *accounting* against the pipeline model of §2.1:
//
//  * The 14-deep pipeline issues at most one instruction per cycle, and a
//    given tasklet may issue only every kPipelineReentry (11) cycles. With A
//    active tasklets, a tasklet therefore issues one instruction every
//    max(11, A) cycles, and the DPU as a whole retires at most 1/cycle.
//  * A tasklet blocks for the duration of its MRAM DMA transfers
//    (setup + bytes/2 cycles); other tasklets keep the pipeline busy, but the
//    single DMA engine serialises all transfers of a DPU.
//
// Kernels are structured as P *pools* of T tasklets (paper §4.2.3). Within a
// pool, tasklets synchronise at anti-diagonal granularity; pools run
// independently. Accounting granularity mirrors that: each pool records a
// critical path (per-step max over its tasklets) plus totals, and the DPU
// launch time is the slowest pool's critical path — bounded below by the
// whole-DPU issue and DMA-engine limits:
//
//   cycles = max(  max_p(crit_instr_p) * max(11, A) + max_p(crit_dma_p),
//                  total_instr,            // pipeline issue bound
//                  total_dma_cycles )      // MRAM port bound
//
// Pipeline utilisation (reported in §5: 95–99%) = total_instr / cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "upmem/arch.hpp"

namespace pimnw::upmem {

/// Cycles consumed by one MRAM<->WRAM DMA transfer of `bytes`.
std::uint64_t dma_cycles(std::uint64_t bytes);

/// Per-tasklet issue interval with `active_tasklets` runnable tasklets.
inline std::uint64_t issue_interval(int active_tasklets) {
  return static_cast<std::uint64_t>(
      active_tasklets > kPipelineReentry ? active_tasklets
                                         : kPipelineReentry);
}

/// Accounting for one pool of tasklets.
class PoolCost {
 public:
  /// One barrier-delimited parallel step: each of the pool's tasklets
  /// executed the given instruction counts. Critical path takes the max.
  void step(std::initializer_list<std::uint64_t> per_tasklet_instr);
  void step(const std::vector<std::uint64_t>& per_tasklet_instr);

  /// Balanced parallel step: `total_instr` split across `tasklets`, the
  /// slowest executing ceil(total/tasklets). The common fast path — avoids
  /// materialising a vector per anti-diagonal.
  void balanced_step(std::uint64_t total_instr, int tasklets);

  /// Master-tasklet-only (serial) section: the pool's other tasklets wait.
  void serial(std::uint64_t instr);

  /// A DMA transfer issued from this pool's critical path.
  void dma(std::uint64_t bytes);

  std::uint64_t critical_instr() const { return critical_instr_; }
  std::uint64_t total_instr() const { return total_instr_; }
  std::uint64_t critical_dma_cycles() const { return critical_dma_cycles_; }
  std::uint64_t dma_bytes() const { return dma_bytes_; }

 private:
  std::uint64_t critical_instr_ = 0;
  std::uint64_t total_instr_ = 0;
  std::uint64_t critical_dma_cycles_ = 0;
  std::uint64_t dma_bytes_ = 0;
};

/// Whole-DPU accounting for one launch.
class DpuCostModel {
 public:
  /// `pools` concurrent pools of `tasklets_per_pool` tasklets each.
  DpuCostModel(int pools, int tasklets_per_pool);

  PoolCost& pool(int p);
  const PoolCost& pool(int p) const;
  int pools() const { return static_cast<int>(pool_costs_.size()); }
  int tasklets_per_pool() const { return tasklets_per_pool_; }
  int active_tasklets() const {
    return pools() * tasklets_per_pool_;
  }

  /// Index of the pool with the smallest committed critical path — the pool
  /// that will grab the next work item from the DPU's shared queue. This is
  /// how the kernel reproduces the dynamic pool scheduling of §4.2.3.
  int least_loaded_pool() const;

  struct Summary {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t dma_cycles_total = 0;
    std::uint64_t dma_bytes = 0;
    double pipeline_utilization = 0.0;  // instructions / cycles
    /// Fraction of the launch spent on MRAM<->WRAM transfers beyond what the
    /// pipeline hides (paper §5: 1–5%).
    double mram_overhead = 0.0;
    double seconds = 0.0;  // cycles / kDpuFrequencyHz
  };

  Summary summarize() const;

 private:
  int tasklets_per_pool_;
  std::vector<PoolCost> pool_costs_;
};

}  // namespace pimnw::upmem
