// DPU timing model.
//
// The simulator is functional (kernels really compute) but time comes from
// instruction/DMA *accounting* against the pipeline model of §2.1:
//
//  * The 14-deep pipeline issues at most one instruction per cycle, and a
//    given tasklet may issue only every kPipelineReentry (11) cycles. With A
//    active tasklets, a tasklet therefore issues one instruction every
//    max(11, A) cycles, and the DPU as a whole retires at most 1/cycle.
//  * A tasklet blocks for the duration of its MRAM DMA transfers
//    (setup + bytes/2 cycles); other tasklets keep the pipeline busy, but the
//    single DMA engine serialises all transfers of a DPU.
//
// Kernels are structured as P *pools* of T tasklets (paper §4.2.3). Within a
// pool, tasklets synchronise at anti-diagonal granularity; pools run
// independently. Accounting granularity mirrors that: each pool records a
// critical path (per-step max over its tasklets) plus totals, and the DPU
// launch time is the slowest pool's critical path — bounded below by the
// whole-DPU issue and DMA-engine limits:
//
//   cycles = max(  max_p(crit_instr_p) * max(11, A) + max_p(crit_dma_p),
//                  total_instr,            // pipeline issue bound
//                  total_dma_cycles )      // MRAM port bound
//
// Pipeline utilisation (reported in §5: 95–99%) = total_instr / cycles.
//
// Hardware-counter emulation (ISSUE 5, DESIGN.md §12 "Profiler"): every
// charge is additionally attributed to the kernel's *current phase*
// (set_phase) in per-phase counters that the timing arithmetic above never
// reads — summarize() and least_loaded_pool() are byte-for-byte unaffected,
// so attribution is a pure observer. DpuCostModel::profile() folds the
// counters into a DpuPhaseProfile whose rows sum *exactly* to
// Summary.cycles (the reconciliation invariant pinned by profile_test).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "upmem/arch.hpp"

namespace pimnw::upmem {

/// Cycles consumed by one MRAM<->WRAM DMA transfer of `bytes`.
std::uint64_t dma_cycles(std::uint64_t bytes);

/// Per-tasklet issue interval with `active_tasklets` runnable tasklets.
inline std::uint64_t issue_interval(int active_tasklets) {
  return static_cast<std::uint64_t>(
      active_tasklets > kPipelineReentry ? active_tasklets
                                         : kPipelineReentry);
}

/// Named kernel phases for cycle attribution (the emulated counters of the
/// UPMEM profiling story; DESIGN.md §12). The set mirrors the banded-NW
/// kernel's structure but is kernel-agnostic: a program tags each charge
/// with its current phase via PoolCost::set_phase.
enum class Phase : int {
  /// Boot, header parse, descriptor fetches, 2-bit sequence window refills
  /// (decode streaming), pair setup and result write-back.
  kSetup = 0,
  /// Anti-diagonal cell updates + the per-anti-diagonal pool barrier.
  kCompute,
  /// Band-shift decision (the master tasklet's window steering, §3.2).
  kBandShift,
  /// BT-to-MRAM streaming: nibble-packed BT rows and staged window origins.
  kBtDma,
  /// Backwards BT walk: row/lo cache fetches, walk ops, CIGAR run flushes.
  kTraceback,
  kCount
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

/// Short stable identifier ("setup", "compute", ...) used in JSON and traces.
const char* phase_name(Phase phase);

/// DMA size histogram: power-of-two buckets over the legal 8..2048 B
/// transfer range. Bucket i holds transfers of (2^(i+2), 2^(i+3)] bytes,
/// i.e. upper bounds 8, 16, 32, 64, 128, 256, 512, 1024, 2048.
inline constexpr int kDmaHistBuckets = 9;

int dma_hist_bucket(std::uint64_t bytes);

/// Upper bound in bytes of histogram bucket `bucket` (8 << bucket).
std::uint64_t dma_hist_bucket_bytes(int bucket);

/// What dominates a launch: the answer pimnw-prof exists to give.
enum class Bottleneck : int {
  kPipeline = 0,  // issue cycles dominate (the paper's 95–99% regime)
  kMram = 1,      // un-hidden DMA stalls dominate
  kReentry = 2,   // max(11, A) slack dominates (too few tasklets)
};

const char* bottleneck_name(Bottleneck b);

/// Accounting for one pool of tasklets.
class PoolCost {
 public:
  /// Set the phase subsequent charges are attributed to. Attribution is
  /// observational only: no timing output changes, whatever the call
  /// pattern (profile_test pins the reconciliation; engine_test the
  /// bit-identity).
  void set_phase(Phase phase) { phase_ = phase; }
  Phase current_phase() const { return phase_; }

  /// One barrier-delimited parallel step: each of the pool's tasklets
  /// executed the given instruction counts. Critical path takes the max.
  void step(std::initializer_list<std::uint64_t> per_tasklet_instr);
  void step(const std::vector<std::uint64_t>& per_tasklet_instr);

  /// Balanced parallel step: `total_instr` split across `tasklets`, the
  /// slowest executing ceil(total/tasklets). The common fast path — avoids
  /// materialising a vector per anti-diagonal.
  void balanced_step(std::uint64_t total_instr, int tasklets);

  /// Master-tasklet-only (serial) section: the pool's other tasklets wait.
  void serial(std::uint64_t instr);

  /// A DMA transfer issued from this pool's critical path.
  void dma(std::uint64_t bytes);

  std::uint64_t critical_instr() const { return critical_instr_; }
  std::uint64_t total_instr() const { return total_instr_; }
  std::uint64_t critical_dma_cycles() const { return critical_dma_cycles_; }
  std::uint64_t dma_bytes() const { return dma_bytes_; }

  // --- emulated hardware counters (pure observers) ---
  std::uint64_t phase_instr(Phase phase) const {
    return phase_instr_[static_cast<std::size_t>(phase)];
  }
  std::uint64_t phase_dma_cycles(Phase phase) const {
    return phase_dma_cycles_[static_cast<std::size_t>(phase)];
  }
  std::uint64_t phase_dma_bytes(Phase phase) const {
    return phase_dma_bytes_[static_cast<std::size_t>(phase)];
  }
  /// Instructions executed by tasklet `t` of this pool (serial sections run
  /// on tasklet 0; balanced steps split floor/remainder over the tasklets).
  std::uint64_t tasklet_instr(int t) const {
    return tasklet_instr_[static_cast<std::size_t>(t)];
  }
  /// Transfers recorded in DMA-size histogram bucket `bucket`.
  std::uint64_t dma_hist(int bucket) const {
    return dma_hist_[static_cast<std::size_t>(bucket)];
  }

 private:
  std::uint64_t critical_instr_ = 0;
  std::uint64_t total_instr_ = 0;
  std::uint64_t critical_dma_cycles_ = 0;
  std::uint64_t dma_bytes_ = 0;

  // Emulated counters. Never read by summarize()/least_loaded_pool().
  Phase phase_ = Phase::kSetup;
  std::array<std::uint64_t, kPhaseCount> phase_instr_{};
  std::array<std::uint64_t, kPhaseCount> phase_dma_cycles_{};
  std::array<std::uint64_t, kPhaseCount> phase_dma_bytes_{};
  std::array<std::uint64_t, kMaxTasklets> tasklet_instr_{};
  std::array<std::uint64_t, kDmaHistBuckets> dma_hist_{};
};

/// Phase-attributed view of one DPU launch (DESIGN.md §12). Exact by
/// construction:
///
///   Σ_phase issue_cycles[ph] + Σ_phase dma_stall_cycles[ph]
///     + reentry_stall_cycles  ==  cycles  ==  Summary.cycles
///
/// where issue_cycles[ph] is the phase's retired instructions (the pipeline
/// retires at most one per cycle, so instructions *are* busy cycles),
/// dma_stall_cycles distributes the un-hidden DMA time
/// min(total_dma_cycles, cycles - instructions) over phases proportionally
/// to their DMA cycles (largest-remainder rounding, deterministic), and
/// reentry_stall_cycles is the residual max(11, A) issue slack.
struct DpuPhaseProfile {
  std::uint64_t cycles = 0;  // == Summary.cycles
  std::array<std::uint64_t, kPhaseCount> issue_cycles{};
  std::array<std::uint64_t, kPhaseCount> dma_stall_cycles{};
  std::array<std::uint64_t, kPhaseCount> dma_bytes{};
  std::uint64_t reentry_stall_cycles = 0;
  /// DMA-engine serialisation across pools: Σ_p dma_p − max_p dma_p, the
  /// cycles during which more than one pool wanted the single MRAM port.
  std::uint64_t mram_contention_cycles = 0;
  /// Instructions per hardware tasklet (pool p, tasklet t → index p·T + t).
  std::array<std::uint64_t, kMaxTasklets> tasklet_instr{};
  int active_tasklets = 0;
  std::array<std::uint64_t, kDmaHistBuckets> dma_hist{};
  Bottleneck bottleneck = Bottleneck::kPipeline;

  std::uint64_t phase_cycles(Phase phase) const {
    const auto i = static_cast<std::size_t>(phase);
    return issue_cycles[i] + dma_stall_cycles[i];
  }
  std::uint64_t total_issue_cycles() const {
    std::uint64_t sum = 0;
    for (std::uint64_t c : issue_cycles) sum += c;
    return sum;
  }
  std::uint64_t total_dma_stall_cycles() const {
    std::uint64_t sum = 0;
    for (std::uint64_t c : dma_stall_cycles) sum += c;
    return sum;
  }
  /// Σ of every attributed row — equals `cycles` (the invariant).
  std::uint64_t attributed_cycles() const {
    return total_issue_cycles() + total_dma_stall_cycles() +
           reentry_stall_cycles;
  }
  /// 1 − pipeline utilisation, as attributed stall cycles.
  double stall_fraction() const {
    return cycles > 0 ? static_cast<double>(cycles - total_issue_cycles()) /
                            static_cast<double>(cycles)
                      : 0.0;
  }

  /// Merge another launch's profile into this one (aggregation across DPUs
  /// and launches; `cycles` and counters add, the verdict is recomputed
  /// from the merged totals).
  void merge(const DpuPhaseProfile& other);
};

/// Classify what dominates from the three attributed components (issue vs
/// un-hidden DMA vs re-entry slack). Ties resolve in that order.
Bottleneck classify_bottleneck(std::uint64_t issue_cycles,
                               std::uint64_t dma_stall_cycles,
                               std::uint64_t reentry_stall_cycles);

/// Whole-DPU accounting for one launch.
class DpuCostModel {
 public:
  /// `pools` concurrent pools of `tasklets_per_pool` tasklets each.
  DpuCostModel(int pools, int tasklets_per_pool);

  PoolCost& pool(int p);
  const PoolCost& pool(int p) const;
  int pools() const { return static_cast<int>(pool_costs_.size()); }
  int tasklets_per_pool() const { return tasklets_per_pool_; }
  int active_tasklets() const {
    return pools() * tasklets_per_pool_;
  }

  /// Index of the pool with the smallest committed critical path — the pool
  /// that will grab the next work item from the DPU's shared queue. This is
  /// how the kernel reproduces the dynamic pool scheduling of §4.2.3.
  int least_loaded_pool() const;

  struct Summary {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t dma_cycles_total = 0;
    std::uint64_t dma_bytes = 0;
    double pipeline_utilization = 0.0;  // instructions / cycles
    /// Fraction of the launch spent on MRAM<->WRAM transfers beyond what the
    /// pipeline hides (paper §5: 1–5%).
    double mram_overhead = 0.0;
    double seconds = 0.0;  // cycles / kDpuFrequencyHz
  };

  Summary summarize() const;

  /// Phase-attributed view of the same launch. Reads only the emulated
  /// counters plus summarize(); never mutates, so calling it (or not)
  /// cannot change any modeled number.
  DpuPhaseProfile profile() const;

 private:
  int tasklets_per_pool_;
  std::vector<PoolCost> pool_costs_;
};

}  // namespace pimnw::upmem
