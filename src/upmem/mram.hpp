// Simulated 64 MB MRAM bank.
//
// Storage grows on demand (a full 40-rank system would otherwise pin 160 GB)
// but every access is bounds-checked against the architectural 64 MB, and
// DMA-shaped accesses additionally enforce the engine's size/alignment rules.
// The host-side SDK facade and the DPU-side DMA both funnel through this
// class, so an out-of-bank address is caught identically on either side.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "upmem/arch.hpp"

namespace pimnw::upmem {

class Mram {
 public:
  explicit Mram(std::uint64_t capacity = kMramBytes) : capacity_(capacity) {}

  std::uint64_t capacity() const { return capacity_; }

  /// Bytes actually materialised by the simulation (high-water mark).
  std::uint64_t footprint() const { return data_.size(); }

  /// Raw byte copy in/out (host transfers — no DMA shape constraints, the
  /// host accesses MRAM through the DDR bus).
  void write(std::uint64_t addr, std::span<const std::uint8_t> bytes);
  void read(std::uint64_t addr, std::span<std::uint8_t> out) const;

  /// Validate a DPU DMA transfer shape: 8-byte aligned address, size in
  /// [8, 2048] and a multiple of 8, and fully inside the bank. Throws
  /// CheckError otherwise. (The real engine silently corrupts on misuse;
  /// the simulator makes misuse loud.)
  void check_dma(std::uint64_t addr, std::uint64_t bytes) const;

  /// Zero the bank (between unrelated launches in tests).
  void clear() { data_.clear(); }

 private:
  void ensure(std::uint64_t end) const;

  std::uint64_t capacity_;
  mutable std::vector<std::uint8_t> data_;
};

}  // namespace pimnw::upmem
