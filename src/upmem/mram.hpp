// Simulated 64 MB MRAM bank.
//
// Storage is chunk-sparse: only 64 KB chunks that have actually been written
// are materialised, so a write at a high offset (e.g. the 32 MB broadcast
// pool base) does not zero-fill everything below it. A full 40-rank system
// would otherwise pin 160 GB; with sparse chunks the resident set tracks the
// bytes the simulation really touches.
//
// Released chunks (clear(), release_below()) go to a per-bank free list and
// are recycled by the next write instead of returned to the allocator. In
// the parallel simulator each worker arena owns one bank and reuses it for
// every DPU image that worker executes, so after the first round the bank's
// chunk pages are already faulted in on — and, on a NUMA machine with
// first-touch policy, resident near — the core that keeps filling them;
// recycling keeps that locality instead of bouncing pages through the
// allocator (DESIGN.md §15). Recycled chunks are re-zeroed before reuse:
// reads of released-then-unwritten ranges must yield zeros exactly like
// never-written ones.
//
// Every access is bounds-checked
// against the architectural 64 MB, and DMA-shaped accesses additionally
// enforce the engine's size/alignment rules. The host-side SDK facade and
// the DPU-side DMA both funnel through this class, so an out-of-bank
// address is caught identically on either side.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "upmem/arch.hpp"

namespace pimnw::upmem {

class Mram {
 public:
  explicit Mram(std::uint64_t capacity = kMramBytes) : capacity_(capacity) {}

  std::uint64_t capacity() const { return capacity_; }

  /// Bytes actually materialised by the simulation (chunk granularity).
  std::uint64_t footprint() const { return materialised_ * kChunkBytes; }

  /// Raw byte copy in/out (host transfers — no DMA shape constraints, the
  /// host accesses MRAM through the DDR bus). Reads of never-written chunks
  /// yield zeros without materialising them.
  void write(std::uint64_t addr, std::span<const std::uint8_t> bytes);
  void read(std::uint64_t addr, std::span<std::uint8_t> out) const;

  /// Validate a DPU DMA transfer shape: 8-byte aligned address, size in
  /// [8, 2048] and a multiple of 8, and fully inside the bank. Throws
  /// CheckError otherwise. (The real engine silently corrupts on misuse;
  /// the simulator makes misuse loud.)
  void check_dma(std::uint64_t addr, std::uint64_t bytes) const;

  /// Zero the bank (between unrelated launches in tests). Materialised
  /// chunks move to the free list for recycling rather than being freed.
  void clear();

  /// Session reset (DESIGN.md §13): drop every materialised chunk that lies
  /// entirely below `offset` — the per-round scratch of a persistent-
  /// database session — while chunks at or above `offset` (the resident
  /// database) stay untouched. Returns the number of chunks released.
  /// Subsequent reads of released chunks yield zeros, as for never-written
  /// ones.
  std::uint64_t release_below(std::uint64_t offset);

  /// Chunks sitting in the free list, awaiting reuse (observability/tests).
  std::uint64_t free_chunks() const { return free_list_.size(); }

 private:
  static constexpr std::uint64_t kChunkBytes = 64ull * 1024;

  std::uint8_t* chunk_for_write(std::uint64_t index);

  std::uint64_t capacity_;
  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
  std::vector<std::unique_ptr<std::uint8_t[]>> free_list_;
  std::uint64_t materialised_ = 0;
};

}  // namespace pimnw::upmem
