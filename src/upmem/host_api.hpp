// UPMEM-SDK-style host facade over the simulator (paper §2.2).
//
// The real host program is written against UPMEM's SDK; this facade exposes
// the simulator through the same vocabulary so other PiM kernels can be
// built on the substrate without touching the alignment stack:
//
//   SDK                          | here
//   -----------------------------+----------------------------------------
//   dpu_alloc(nr_ranks, ...)     | DpuSet::allocate_ranks(n)
//   dpu_load(set, program, ...)  | implicit: programs are passed to exec()
//   dpu_copy_to(set, sym, ...)   | DpuSet::copy_to(offset, buffers)
//   dpu_broadcast_to(set, ...)   | DpuSet::broadcast(offset, buffer)
//   dpu_launch(set, DPU_SYNC)    | DpuSet::exec(factory, pools, tasklets)
//   dpu_copy_from(set, sym, ...) | DpuSet::copy_from(offset, sizes, out)
//
// Like the hardware, the granularity of every operation is the whole set;
// per-rank slicing is available through rank_subset() (the SDK's
// dpu_set_rank iterators).
#pragma once

#include <functional>
#include <memory>

#include "upmem/system.hpp"

namespace pimnw::upmem {

class DpuSet {
 public:
  /// Allocate a fresh simulated system of `nr_ranks` ranks.
  static DpuSet allocate_ranks(int nr_ranks);

  int nr_ranks() const;
  int nr_dpus() const;

  /// A view over a single rank of this set (shares the underlying system).
  DpuSet rank_subset(int rank);

  /// Write per-DPU buffers at `mram_offset`. Buffers are indexed DPU-major
  /// across the set (rank 0 DPU 0..63, rank 1 DPU 0..63, ...); missing or
  /// empty entries skip their DPU.
  TransferStats copy_to(std::uint64_t mram_offset,
                        const std::vector<std::vector<std::uint8_t>>& buffers);

  /// Write the same buffer to every DPU of the set.
  TransferStats broadcast(std::uint64_t mram_offset,
                          std::span<const std::uint8_t> buffer);

  struct ExecStats {
    /// Modeled wall time: ranks run concurrently, each gated by its barrier.
    double seconds = 0.0;
    std::vector<Rank::LaunchStats> per_rank;
  };

  /// Launch one kernel instance per DPU (factory may return nullptr to idle
  /// a DPU) and synchronise — the SDK's dpu_launch(DPU_SYNCHRONOUS).
  ExecStats exec(
      const std::function<std::unique_ptr<DpuProgram>(int rank, int dpu)>&
          factory,
      int pools, int tasklets_per_pool);

  /// Read `sizes[d]` bytes per DPU at `mram_offset` into `out[d]`
  /// (DPU-major across the set).
  TransferStats copy_from(std::uint64_t mram_offset,
                          const std::vector<std::uint64_t>& sizes,
                          std::vector<std::vector<std::uint8_t>>& out);

  /// Persistent-database session reset (DESIGN.md §13): drop every bank
  /// chunk below `offset` on every DPU of the set, keeping the resident
  /// database written at/above `offset` by broadcast(). Free (no modeled
  /// cost): the host releases its own staging memory, nothing crosses the
  /// bus. Returns the number of chunks released across the set.
  std::uint64_t release_below(std::uint64_t offset);

  /// Escape hatch to the underlying simulator.
  PimSystem& system() { return *system_; }

 private:
  DpuSet(std::shared_ptr<PimSystem> system, int first_rank, int rank_count)
      : system_(std::move(system)),
        first_rank_(first_rank),
        rank_count_(rank_count) {}

  std::shared_ptr<PimSystem> system_;
  int first_rank_;
  int rank_count_;
};

}  // namespace pimnw::upmem
