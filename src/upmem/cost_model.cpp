#include "upmem/cost_model.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pimnw::upmem {

std::uint64_t dma_cycles(std::uint64_t bytes) {
  return kDmaSetupCycles +
         static_cast<std::uint64_t>(static_cast<double>(bytes) /
                                    kDmaBytesPerCycle);
}

void PoolCost::step(std::initializer_list<std::uint64_t> per_tasklet_instr) {
  std::uint64_t max_instr = 0;
  for (std::uint64_t instr : per_tasklet_instr) {
    max_instr = std::max(max_instr, instr);
    total_instr_ += instr;
  }
  critical_instr_ += max_instr;
}

void PoolCost::step(const std::vector<std::uint64_t>& per_tasklet_instr) {
  std::uint64_t max_instr = 0;
  for (std::uint64_t instr : per_tasklet_instr) {
    max_instr = std::max(max_instr, instr);
    total_instr_ += instr;
  }
  critical_instr_ += max_instr;
}

void PoolCost::balanced_step(std::uint64_t total_instr, int tasklets) {
  PIMNW_CHECK(tasklets >= 1);
  const std::uint64_t t = static_cast<std::uint64_t>(tasklets);
  critical_instr_ += (total_instr + t - 1) / t;
  total_instr_ += total_instr;
}

void PoolCost::serial(std::uint64_t instr) {
  critical_instr_ += instr;
  total_instr_ += instr;
}

void PoolCost::dma(std::uint64_t bytes) {
  const std::uint64_t cycles = dma_cycles(bytes);
  critical_dma_cycles_ += cycles;
  dma_bytes_ += bytes;
}

DpuCostModel::DpuCostModel(int pools, int tasklets_per_pool)
    : tasklets_per_pool_(tasklets_per_pool) {
  PIMNW_CHECK_MSG(pools >= 1 && tasklets_per_pool >= 1,
                  "need at least one pool of one tasklet");
  PIMNW_CHECK_MSG(pools * tasklets_per_pool <= kMaxTasklets,
                  "P*T = " << pools * tasklets_per_pool << " exceeds the "
                           << kMaxTasklets << " hardware tasklets");
  pool_costs_.resize(static_cast<std::size_t>(pools));
}

PoolCost& DpuCostModel::pool(int p) {
  PIMNW_CHECK(p >= 0 && p < pools());
  return pool_costs_[static_cast<std::size_t>(p)];
}

const PoolCost& DpuCostModel::pool(int p) const {
  PIMNW_CHECK(p >= 0 && p < pools());
  return pool_costs_[static_cast<std::size_t>(p)];
}

int DpuCostModel::least_loaded_pool() const {
  int best = 0;
  std::uint64_t best_load = ~std::uint64_t{0};
  for (int p = 0; p < pools(); ++p) {
    const PoolCost& pc = pool_costs_[static_cast<std::size_t>(p)];
    const std::uint64_t load =
        pc.critical_instr() * issue_interval(active_tasklets()) +
        pc.critical_dma_cycles();
    if (load < best_load) {
      best_load = load;
      best = p;
    }
  }
  return best;
}

DpuCostModel::Summary DpuCostModel::summarize() const {
  Summary s;
  std::uint64_t slowest_pool = 0;
  for (const PoolCost& pc : pool_costs_) {
    const std::uint64_t pool_cycles =
        pc.critical_instr() * issue_interval(active_tasklets()) +
        pc.critical_dma_cycles();
    slowest_pool = std::max(slowest_pool, pool_cycles);
    s.instructions += pc.total_instr();
    s.dma_cycles_total += pc.critical_dma_cycles();
    s.dma_bytes += pc.dma_bytes();
  }
  s.cycles = std::max({slowest_pool, s.instructions, s.dma_cycles_total});
  if (s.cycles > 0) {
    s.pipeline_utilization =
        static_cast<double>(s.instructions) / static_cast<double>(s.cycles);
    // MRAM overhead: cycles beyond the pure-issue lower bound, attributable
    // to DMA on the critical path.
    const std::uint64_t compute_only =
        std::max(s.cycles - s.dma_cycles_total, s.instructions);
    s.mram_overhead = static_cast<double>(s.cycles - compute_only) /
                      static_cast<double>(s.cycles);
  }
  s.seconds = static_cast<double>(s.cycles) / kDpuFrequencyHz;
  return s;
}

}  // namespace pimnw::upmem
