#include "upmem/cost_model.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pimnw::upmem {

std::uint64_t dma_cycles(std::uint64_t bytes) {
  return kDmaSetupCycles +
         static_cast<std::uint64_t>(static_cast<double>(bytes) /
                                    kDmaBytesPerCycle);
}

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSetup: return "setup";
    case Phase::kCompute: return "compute";
    case Phase::kBandShift: return "band_shift";
    case Phase::kBtDma: return "bt_dma";
    case Phase::kTraceback: return "traceback";
    case Phase::kCount: break;
  }
  return "?";
}

int dma_hist_bucket(std::uint64_t bytes) {
  int bucket = 0;
  std::uint64_t bound = kDmaMinBytes;
  while (bucket + 1 < kDmaHistBuckets && bytes > bound) {
    bound <<= 1;
    ++bucket;
  }
  return bucket;
}

std::uint64_t dma_hist_bucket_bytes(int bucket) {
  return static_cast<std::uint64_t>(kDmaMinBytes) << bucket;
}

const char* bottleneck_name(Bottleneck b) {
  switch (b) {
    case Bottleneck::kPipeline: return "pipeline-bound";
    case Bottleneck::kMram: return "mram-bound";
    case Bottleneck::kReentry: return "reentry-bound";
  }
  return "?";
}

Bottleneck classify_bottleneck(std::uint64_t issue_cycles,
                               std::uint64_t dma_stall_cycles,
                               std::uint64_t reentry_stall_cycles) {
  if (issue_cycles >= dma_stall_cycles &&
      issue_cycles >= reentry_stall_cycles) {
    return Bottleneck::kPipeline;
  }
  if (dma_stall_cycles >= reentry_stall_cycles) return Bottleneck::kMram;
  return Bottleneck::kReentry;
}

void DpuPhaseProfile::merge(const DpuPhaseProfile& other) {
  cycles += other.cycles;
  for (int ph = 0; ph < kPhaseCount; ++ph) {
    const auto i = static_cast<std::size_t>(ph);
    issue_cycles[i] += other.issue_cycles[i];
    dma_stall_cycles[i] += other.dma_stall_cycles[i];
    dma_bytes[i] += other.dma_bytes[i];
  }
  reentry_stall_cycles += other.reentry_stall_cycles;
  mram_contention_cycles += other.mram_contention_cycles;
  for (int t = 0; t < kMaxTasklets; ++t) {
    tasklet_instr[static_cast<std::size_t>(t)] +=
        other.tasklet_instr[static_cast<std::size_t>(t)];
  }
  active_tasklets = std::max(active_tasklets, other.active_tasklets);
  for (int b = 0; b < kDmaHistBuckets; ++b) {
    dma_hist[static_cast<std::size_t>(b)] +=
        other.dma_hist[static_cast<std::size_t>(b)];
  }
  bottleneck = classify_bottleneck(total_issue_cycles(),
                                   total_dma_stall_cycles(),
                                   reentry_stall_cycles);
}

void PoolCost::step(std::initializer_list<std::uint64_t> per_tasklet_instr) {
  std::uint64_t max_instr = 0;
  std::uint64_t sum = 0;
  std::size_t t = 0;
  for (std::uint64_t instr : per_tasklet_instr) {
    max_instr = std::max(max_instr, instr);
    sum += instr;
    if (t < static_cast<std::size_t>(kMaxTasklets)) {
      tasklet_instr_[t] += instr;
    }
    ++t;
  }
  total_instr_ += sum;
  critical_instr_ += max_instr;
  phase_instr_[static_cast<std::size_t>(phase_)] += sum;
}

void PoolCost::step(const std::vector<std::uint64_t>& per_tasklet_instr) {
  std::uint64_t max_instr = 0;
  std::uint64_t sum = 0;
  for (std::size_t t = 0; t < per_tasklet_instr.size(); ++t) {
    const std::uint64_t instr = per_tasklet_instr[t];
    max_instr = std::max(max_instr, instr);
    sum += instr;
    if (t < static_cast<std::size_t>(kMaxTasklets)) {
      tasklet_instr_[t] += instr;
    }
  }
  total_instr_ += sum;
  critical_instr_ += max_instr;
  phase_instr_[static_cast<std::size_t>(phase_)] += sum;
}

void PoolCost::balanced_step(std::uint64_t total_instr, int tasklets) {
  PIMNW_CHECK(tasklets >= 1);
  const std::uint64_t t = static_cast<std::uint64_t>(tasklets);
  critical_instr_ += (total_instr + t - 1) / t;
  total_instr_ += total_instr;
  phase_instr_[static_cast<std::size_t>(phase_)] += total_instr;
  // Occupancy attribution: the first (total % t) tasklets run one extra
  // instruction — the same ceil/floor split the critical path assumes.
  const std::uint64_t base = total_instr / t;
  const std::uint64_t extra = total_instr % t;
  const int used = std::min(tasklets, kMaxTasklets);
  for (int i = 0; i < used; ++i) {
    tasklet_instr_[static_cast<std::size_t>(i)] +=
        base + (static_cast<std::uint64_t>(i) < extra ? 1 : 0);
  }
}

void PoolCost::serial(std::uint64_t instr) {
  critical_instr_ += instr;
  total_instr_ += instr;
  phase_instr_[static_cast<std::size_t>(phase_)] += instr;
  tasklet_instr_[0] += instr;  // serial sections run on the master tasklet
}

void PoolCost::dma(std::uint64_t bytes) {
  const std::uint64_t cycles = dma_cycles(bytes);
  critical_dma_cycles_ += cycles;
  dma_bytes_ += bytes;
  phase_dma_cycles_[static_cast<std::size_t>(phase_)] += cycles;
  phase_dma_bytes_[static_cast<std::size_t>(phase_)] += bytes;
  dma_hist_[static_cast<std::size_t>(dma_hist_bucket(bytes))] += 1;
}

DpuCostModel::DpuCostModel(int pools, int tasklets_per_pool)
    : tasklets_per_pool_(tasklets_per_pool) {
  PIMNW_CHECK_MSG(pools >= 1 && tasklets_per_pool >= 1,
                  "need at least one pool of one tasklet");
  PIMNW_CHECK_MSG(pools * tasklets_per_pool <= kMaxTasklets,
                  "P*T = " << pools * tasklets_per_pool << " exceeds the "
                           << kMaxTasklets << " hardware tasklets");
  pool_costs_.resize(static_cast<std::size_t>(pools));
}

PoolCost& DpuCostModel::pool(int p) {
  PIMNW_CHECK(p >= 0 && p < pools());
  return pool_costs_[static_cast<std::size_t>(p)];
}

const PoolCost& DpuCostModel::pool(int p) const {
  PIMNW_CHECK(p >= 0 && p < pools());
  return pool_costs_[static_cast<std::size_t>(p)];
}

int DpuCostModel::least_loaded_pool() const {
  int best = 0;
  std::uint64_t best_load = ~std::uint64_t{0};
  for (int p = 0; p < pools(); ++p) {
    const PoolCost& pc = pool_costs_[static_cast<std::size_t>(p)];
    const std::uint64_t load =
        pc.critical_instr() * issue_interval(active_tasklets()) +
        pc.critical_dma_cycles();
    if (load < best_load) {
      best_load = load;
      best = p;
    }
  }
  return best;
}

DpuCostModel::Summary DpuCostModel::summarize() const {
  Summary s;
  std::uint64_t slowest_pool = 0;
  for (const PoolCost& pc : pool_costs_) {
    const std::uint64_t pool_cycles =
        pc.critical_instr() * issue_interval(active_tasklets()) +
        pc.critical_dma_cycles();
    slowest_pool = std::max(slowest_pool, pool_cycles);
    s.instructions += pc.total_instr();
    s.dma_cycles_total += pc.critical_dma_cycles();
    s.dma_bytes += pc.dma_bytes();
  }
  s.cycles = std::max({slowest_pool, s.instructions, s.dma_cycles_total});
  if (s.cycles > 0) {
    s.pipeline_utilization =
        static_cast<double>(s.instructions) / static_cast<double>(s.cycles);
    // MRAM overhead: cycles beyond the pure-issue lower bound, attributable
    // to DMA on the critical path.
    const std::uint64_t compute_only =
        std::max(s.cycles - s.dma_cycles_total, s.instructions);
    s.mram_overhead = static_cast<double>(s.cycles - compute_only) /
                      static_cast<double>(s.cycles);
  }
  s.seconds = static_cast<double>(s.cycles) / kDpuFrequencyHz;
  return s;
}

DpuPhaseProfile DpuCostModel::profile() const {
  const Summary s = summarize();
  DpuPhaseProfile prof;
  prof.cycles = s.cycles;
  prof.active_tasklets = active_tasklets();

  // Fold the pool counters. Tasklet t of pool p → hardware slot p·T + t.
  std::array<std::uint64_t, kPhaseCount> phase_dma{};
  std::uint64_t max_pool_dma = 0;
  for (int p = 0; p < pools(); ++p) {
    const PoolCost& pc = pool_costs_[static_cast<std::size_t>(p)];
    for (int ph = 0; ph < kPhaseCount; ++ph) {
      const auto phase = static_cast<Phase>(ph);
      prof.issue_cycles[static_cast<std::size_t>(ph)] += pc.phase_instr(phase);
      phase_dma[static_cast<std::size_t>(ph)] += pc.phase_dma_cycles(phase);
      prof.dma_bytes[static_cast<std::size_t>(ph)] += pc.phase_dma_bytes(phase);
    }
    for (int t = 0; t < tasklets_per_pool_; ++t) {
      const int slot = p * tasklets_per_pool_ + t;
      if (slot < kMaxTasklets) {
        prof.tasklet_instr[static_cast<std::size_t>(slot)] =
            pc.tasklet_instr(t);
      }
    }
    for (int b = 0; b < kDmaHistBuckets; ++b) {
      prof.dma_hist[static_cast<std::size_t>(b)] += pc.dma_hist(b);
    }
    max_pool_dma = std::max(max_pool_dma, pc.critical_dma_cycles());
  }
  prof.mram_contention_cycles = s.dma_cycles_total - max_pool_dma;

  // Exact attribution (DESIGN.md §12). The pipeline retires at most one
  // instruction per cycle, so s.instructions busy cycles are attributed to
  // their phases directly; of the remaining stall cycles, DMA can account
  // for at most its own total.
  const std::uint64_t stall = s.cycles - s.instructions;  // cycles >= instr
  const std::uint64_t dma_stall = std::min(s.dma_cycles_total, stall);

  // Largest-remainder split of dma_stall proportional to each phase's DMA
  // cycles: quotas floor, then the phases with the largest remainders (ties
  // to the lower index) absorb the leftover — integer-exact and
  // deterministic.
  if (dma_stall > 0) {
    const std::uint64_t total_dma = s.dma_cycles_total;  // > 0 here
    std::uint64_t assigned = 0;
    std::array<std::uint64_t, kPhaseCount> remainder{};
    for (int ph = 0; ph < kPhaseCount; ++ph) {
      const auto i = static_cast<std::size_t>(ph);
      // 128-bit-safe: dma_stall and phase_dma are both bounded by the launch
      // cycle count; the product fits unsigned __int128.
      const unsigned __int128 num =
          static_cast<unsigned __int128>(dma_stall) * phase_dma[i];
      prof.dma_stall_cycles[i] = static_cast<std::uint64_t>(num / total_dma);
      remainder[i] = static_cast<std::uint64_t>(num % total_dma);
      assigned += prof.dma_stall_cycles[i];
    }
    std::uint64_t leftover = dma_stall - assigned;
    while (leftover > 0) {
      int best = 0;
      for (int ph = 1; ph < kPhaseCount; ++ph) {
        if (remainder[static_cast<std::size_t>(ph)] >
            remainder[static_cast<std::size_t>(best)]) {
          best = ph;
        }
      }
      prof.dma_stall_cycles[static_cast<std::size_t>(best)] += 1;
      remainder[static_cast<std::size_t>(best)] = 0;
      --leftover;
    }
  }

  prof.reentry_stall_cycles = stall - dma_stall;
  prof.bottleneck = classify_bottleneck(s.instructions, dma_stall,
                                        prof.reentry_stall_cycles);
  return prof;
}

}  // namespace pimnw::upmem
