#include "upmem/host_api.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pimnw::upmem {

DpuSet DpuSet::allocate_ranks(int nr_ranks) {
  return DpuSet(std::make_shared<PimSystem>(nr_ranks), 0, nr_ranks);
}

int DpuSet::nr_ranks() const { return rank_count_; }

int DpuSet::nr_dpus() const { return rank_count_ * kDpusPerRank; }

DpuSet DpuSet::rank_subset(int rank) {
  PIMNW_CHECK_MSG(rank >= 0 && rank < rank_count_,
                  "rank " << rank << " outside this set");
  return DpuSet(system_, first_rank_ + rank, 1);
}

TransferStats DpuSet::copy_to(
    std::uint64_t mram_offset,
    const std::vector<std::vector<std::uint8_t>>& buffers) {
  PIMNW_CHECK_MSG(buffers.size() <= static_cast<std::size_t>(nr_dpus()),
                  "more buffers than DPUs in the set");
  TransferStats total;
  for (int r = 0; r < rank_count_; ++r) {
    std::vector<std::vector<std::uint8_t>> rank_buffers(kDpusPerRank);
    for (int d = 0; d < kDpusPerRank; ++d) {
      const std::size_t index =
          static_cast<std::size_t>(r) * kDpusPerRank + static_cast<std::size_t>(d);
      if (index < buffers.size()) rank_buffers[static_cast<std::size_t>(d)] = buffers[index];
    }
    const TransferStats stats =
        system_->copy_to_rank(first_rank_ + r, rank_buffers, mram_offset);
    total.bytes += stats.bytes;
  }
  total.seconds = PimSystem::host_transfer_seconds(total.bytes);
  return total;
}

TransferStats DpuSet::broadcast(std::uint64_t mram_offset,
                                std::span<const std::uint8_t> buffer) {
  TransferStats total;
  for (int r = 0; r < rank_count_; ++r) {
    Rank& rank = system_->rank(first_rank_ + r);
    for (int d = 0; d < kDpusPerRank; ++d) {
      rank.dpu(d).mram().write(mram_offset, buffer);
    }
  }
  total.bytes = buffer.size() * static_cast<std::uint64_t>(nr_dpus());
  total.seconds = PimSystem::host_transfer_seconds(total.bytes);
  return total;
}

DpuSet::ExecStats DpuSet::exec(
    const std::function<std::unique_ptr<DpuProgram>(int rank, int dpu)>&
        factory,
    int pools, int tasklets_per_pool) {
  ExecStats stats;
  stats.per_rank.reserve(static_cast<std::size_t>(rank_count_));
  for (int r = 0; r < rank_count_; ++r) {
    const Rank::LaunchStats launch = system_->rank(first_rank_ + r).launch(
        [&](int d) { return factory(r, d); }, pools, tasklets_per_pool);
    stats.seconds = std::max(stats.seconds, launch.seconds);
    stats.per_rank.push_back(launch);
  }
  return stats;
}

TransferStats DpuSet::copy_from(std::uint64_t mram_offset,
                                const std::vector<std::uint64_t>& sizes,
                                std::vector<std::vector<std::uint8_t>>& out) {
  PIMNW_CHECK_MSG(sizes.size() <= static_cast<std::size_t>(nr_dpus()),
                  "more sizes than DPUs in the set");
  out.assign(sizes.size(), {});
  TransferStats total;
  for (std::size_t index = 0; index < sizes.size(); ++index) {
    if (sizes[index] == 0) continue;
    const int r = static_cast<int>(index) / kDpusPerRank;
    const int d = static_cast<int>(index) % kDpusPerRank;
    out[index].resize(sizes[index]);
    system_->rank(first_rank_ + r).dpu(d).mram().read(mram_offset,
                                                      out[index]);
    total.bytes += sizes[index];
  }
  total.seconds = PimSystem::host_transfer_seconds(total.bytes);
  return total;
}

std::uint64_t DpuSet::release_below(std::uint64_t offset) {
  std::uint64_t released = 0;
  for (int r = 0; r < rank_count_; ++r) {
    Rank& rank = system_->rank(first_rank_ + r);
    for (int d = 0; d < kDpusPerRank; ++d) {
      released += rank.dpu(d).mram().release_below(offset);
    }
  }
  return released;
}

}  // namespace pimnw::upmem
