// Architectural constants of the UPMEM PiM system as described in the paper
// (§2.1) and UPMEM's public documentation. These drive both the functional
// simulator (capacities, DMA rules) and the timing model (cost_model.hpp).
#pragma once

#include <cstdint>

namespace pimnw::upmem {

/// One DPU owns one 64 MB MRAM bank.
inline constexpr std::uint64_t kMramBytes = 64ull * 1024 * 1024;

/// 64 KB WRAM scratchpad per DPU.
inline constexpr std::uint64_t kWramBytes = 64ull * 1024;

/// DPUs per rank; rank is the granularity of launch/transfer/sync.
inline constexpr int kDpusPerRank = 64;

/// Ranks per PiM DIMM (each DIMM = 2 ranks of 64 DPUs = 8 GB).
inline constexpr int kRanksPerDimm = 2;

/// DPU clock of the evaluated server (§5: 2560 DPUs at 350 MHz).
inline constexpr double kDpuFrequencyHz = 350.0e6;

/// Pipeline: 14 stages deep, a tasklet may re-enter only every 11 cycles, so
/// >= 11 runnable tasklets are needed for 1 instruction/cycle (§2.1).
inline constexpr int kPipelineDepth = 14;
inline constexpr int kPipelineReentry = 11;

/// Maximum hardware threads (tasklets) per DPU.
inline constexpr int kMaxTasklets = 24;

/// MRAM<->WRAM DMA: 8..2048-byte transfers, 8-byte aligned, 2 bytes/cycle,
/// plus a fixed engine setup latency per transfer.
inline constexpr std::uint32_t kDmaMinBytes = 8;
inline constexpr std::uint32_t kDmaMaxBytes = 2048;
inline constexpr std::uint32_t kDmaAlign = 8;
inline constexpr double kDmaBytesPerCycle = 2.0;
inline constexpr std::uint32_t kDmaSetupCycles = 32;

/// Measured host<->MRAM aggregate bandwidth of the evaluated server
/// (§4.1.1: "around 60GB/s" across ranks).
inline constexpr double kHostXferBytesPerSec = 60.0e9;

/// Default server shape (§5): 20 DIMMs = 40 ranks = 2560 DPUs.
inline constexpr int kDefaultRanks = 40;

}  // namespace pimnw::upmem
