#include "upmem/wram.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pimnw::upmem {

std::uint64_t Wram::alloc(std::uint64_t bytes) {
  const std::uint64_t aligned = (bytes + 7) & ~std::uint64_t{7};
  PIMNW_CHECK_MSG(next_ + aligned <= capacity_,
                  "WRAM exhausted: requested " << bytes << " bytes with "
                                               << free_bytes() << " free of "
                                               << capacity_);
  const std::uint64_t addr = next_;
  next_ += aligned;
  return addr;
}

void Wram::reset() {
  next_ = 0;
  std::fill(data_.begin(), data_.end(), 0);
}

void Wram::bounds(std::uint64_t addr, std::uint64_t bytes) const {
  PIMNW_CHECK_MSG(addr + bytes <= capacity_,
                  "WRAM access out of range: addr=" << addr << " size="
                                                    << bytes);
}

}  // namespace pimnw::upmem
