#include "upmem/dpu.hpp"

#include <vector>

namespace pimnw::upmem {

void DpuContext::mram_read(std::uint64_t mram_addr, std::uint64_t wram_addr,
                           std::uint64_t bytes) {
  mram.check_dma(mram_addr, bytes);
  mram.read(mram_addr, {wram.raw(wram_addr, bytes), bytes});
}

void DpuContext::mram_write(std::uint64_t wram_addr, std::uint64_t mram_addr,
                            std::uint64_t bytes) {
  mram.check_dma(mram_addr, bytes);
  mram.write(mram_addr, {wram.raw(wram_addr, bytes), bytes});
}

DpuCostModel::Summary Dpu::launch(DpuProgram& program, int pools,
                                  int tasklets_per_pool) {
  Wram wram;
  return launch(program, pools, tasklets_per_pool, wram);
}

DpuCostModel::Summary Dpu::launch(DpuProgram& program, int pools,
                                  int tasklets_per_pool, Wram& wram) {
  wram.reset();
  DpuCostModel cost(pools, tasklets_per_pool);
  DpuContext ctx{mram_, wram, cost};
  program.run(ctx);
  last_summary_ = cost.summarize();
  last_profile_ = cost.profile();
  return last_summary_;
}

}  // namespace pimnw::upmem
