#include "upmem/mram.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"
#include "util/metrics.hpp"

namespace pimnw::upmem {

namespace {

// MRAM chunk lifecycle (DESIGN.md §17): how much simulated bank memory is
// live across all banks and how well the per-bank free lists recycle. Charged
// only at chunk-granular events (materialise/release), never per write.
struct MramSeries {
  metrics::Gauge& chunks_live;
  metrics::Counter& chunks_allocated;
  metrics::Counter& chunks_recycled;
  metrics::Counter& chunks_released;
};

MramSeries& mram_series() {
  auto& reg = metrics::MetricsRegistry::global();
  static MramSeries series{
      reg.gauge("pimnw_mram_chunks_live",
                "Materialised 64 KiB MRAM chunks across all banks"),
      reg.counter("pimnw_mram_chunks_allocated_total",
                  "Chunks materialised from fresh host allocations"),
      reg.counter("pimnw_mram_chunks_recycled_total",
                  "Chunks materialised by recycling a bank's free list"),
      reg.counter("pimnw_mram_chunks_released_total",
                  "Chunks released back to a bank's free list"),
  };
  return series;
}

}  // namespace

std::uint8_t* Mram::chunk_for_write(std::uint64_t index) {
  if (index >= chunks_.size()) chunks_.resize(index + 1);
  std::unique_ptr<std::uint8_t[]>& chunk = chunks_[index];
  if (chunk == nullptr) {
    const bool recycled = !free_list_.empty();
    if (recycled) {
      // Recycle: the page is already faulted in (first-touch locality — see
      // the header comment). Must be re-zeroed: reads of released chunks
      // promise zeros, and the recycled buffer holds stale bytes.
      chunk = std::move(free_list_.back());
      free_list_.pop_back();
      std::memset(chunk.get(), 0, kChunkBytes);
    } else {
      chunk = std::make_unique<std::uint8_t[]>(kChunkBytes);  // zero-filled
    }
    ++materialised_;
    if (metrics::enabled()) {
      MramSeries& series = mram_series();
      (recycled ? series.chunks_recycled : series.chunks_allocated).add(1);
      series.chunks_live.add(1.0);
    }
  }
  return chunk.get();
}

void Mram::clear() {
  std::uint64_t released = 0;
  for (auto& chunk : chunks_) {
    if (chunk != nullptr) {
      free_list_.push_back(std::move(chunk));
      ++released;
    }
  }
  chunks_.clear();
  materialised_ = 0;
  if (released > 0 && metrics::enabled()) {
    MramSeries& series = mram_series();
    series.chunks_released.add(released);
    series.chunks_live.add(-static_cast<double>(released));
  }
}

void Mram::write(std::uint64_t addr, std::span<const std::uint8_t> bytes) {
  // Overflow-safe form: `addr + size <= capacity_` wraps for huge addr and
  // would accept out-of-bank accesses.
  PIMNW_CHECK_MSG(addr <= capacity_ && bytes.size() <= capacity_ - addr,
                  "MRAM write out of bank: addr=" << addr << " size="
                                                  << bytes.size());
  const std::uint8_t* src = bytes.data();
  std::uint64_t left = bytes.size();
  while (left > 0) {
    const std::uint64_t off = addr % kChunkBytes;
    const std::uint64_t n = std::min(left, kChunkBytes - off);
    std::memcpy(chunk_for_write(addr / kChunkBytes) + off, src, n);
    addr += n;
    src += n;
    left -= n;
  }
}

void Mram::read(std::uint64_t addr, std::span<std::uint8_t> out) const {
  PIMNW_CHECK_MSG(addr <= capacity_ && out.size() <= capacity_ - addr,
                  "MRAM read out of bank: addr=" << addr << " size="
                                                 << out.size());
  std::uint8_t* dst = out.data();
  std::uint64_t left = out.size();
  while (left > 0) {
    const std::uint64_t index = addr / kChunkBytes;
    const std::uint64_t off = addr % kChunkBytes;
    const std::uint64_t n = std::min(left, kChunkBytes - off);
    const std::uint8_t* chunk =
        index < chunks_.size() ? chunks_[index].get() : nullptr;
    if (chunk != nullptr) {
      std::memcpy(dst, chunk + off, n);
    } else {
      std::memset(dst, 0, n);
    }
    addr += n;
    dst += n;
    left -= n;
  }
}

std::uint64_t Mram::release_below(std::uint64_t offset) {
  const std::uint64_t limit = std::min<std::uint64_t>(
      chunks_.size(), offset / kChunkBytes);
  std::uint64_t released = 0;
  for (std::uint64_t i = 0; i < limit; ++i) {
    if (chunks_[i] != nullptr) {
      free_list_.push_back(std::move(chunks_[i]));
      ++released;
    }
  }
  materialised_ -= released;
  if (released > 0 && metrics::enabled()) {
    MramSeries& series = mram_series();
    series.chunks_released.add(released);
    series.chunks_live.add(-static_cast<double>(released));
  }
  return released;
}

void Mram::check_dma(std::uint64_t addr, std::uint64_t bytes) const {
  PIMNW_CHECK_MSG(addr % kDmaAlign == 0,
                  "DMA address " << addr << " not 8-byte aligned");
  PIMNW_CHECK_MSG(bytes % kDmaAlign == 0,
                  "DMA size " << bytes << " not a multiple of 8");
  PIMNW_CHECK_MSG(bytes >= kDmaMinBytes && bytes <= kDmaMaxBytes,
                  "DMA size " << bytes << " outside [8, 2048]");
  PIMNW_CHECK_MSG(addr <= capacity_ && bytes <= capacity_ - addr,
                  "DMA transfer out of bank: addr=" << addr << " size="
                                                    << bytes);
}

}  // namespace pimnw::upmem
