#include "upmem/mram.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace pimnw::upmem {

std::uint8_t* Mram::chunk_for_write(std::uint64_t index) {
  if (index >= chunks_.size()) chunks_.resize(index + 1);
  std::unique_ptr<std::uint8_t[]>& chunk = chunks_[index];
  if (chunk == nullptr) {
    if (!free_list_.empty()) {
      // Recycle: the page is already faulted in (first-touch locality — see
      // the header comment). Must be re-zeroed: reads of released chunks
      // promise zeros, and the recycled buffer holds stale bytes.
      chunk = std::move(free_list_.back());
      free_list_.pop_back();
      std::memset(chunk.get(), 0, kChunkBytes);
    } else {
      chunk = std::make_unique<std::uint8_t[]>(kChunkBytes);  // zero-filled
    }
    ++materialised_;
  }
  return chunk.get();
}

void Mram::clear() {
  for (auto& chunk : chunks_) {
    if (chunk != nullptr) free_list_.push_back(std::move(chunk));
  }
  chunks_.clear();
  materialised_ = 0;
}

void Mram::write(std::uint64_t addr, std::span<const std::uint8_t> bytes) {
  // Overflow-safe form: `addr + size <= capacity_` wraps for huge addr and
  // would accept out-of-bank accesses.
  PIMNW_CHECK_MSG(addr <= capacity_ && bytes.size() <= capacity_ - addr,
                  "MRAM write out of bank: addr=" << addr << " size="
                                                  << bytes.size());
  const std::uint8_t* src = bytes.data();
  std::uint64_t left = bytes.size();
  while (left > 0) {
    const std::uint64_t off = addr % kChunkBytes;
    const std::uint64_t n = std::min(left, kChunkBytes - off);
    std::memcpy(chunk_for_write(addr / kChunkBytes) + off, src, n);
    addr += n;
    src += n;
    left -= n;
  }
}

void Mram::read(std::uint64_t addr, std::span<std::uint8_t> out) const {
  PIMNW_CHECK_MSG(addr <= capacity_ && out.size() <= capacity_ - addr,
                  "MRAM read out of bank: addr=" << addr << " size="
                                                 << out.size());
  std::uint8_t* dst = out.data();
  std::uint64_t left = out.size();
  while (left > 0) {
    const std::uint64_t index = addr / kChunkBytes;
    const std::uint64_t off = addr % kChunkBytes;
    const std::uint64_t n = std::min(left, kChunkBytes - off);
    const std::uint8_t* chunk =
        index < chunks_.size() ? chunks_[index].get() : nullptr;
    if (chunk != nullptr) {
      std::memcpy(dst, chunk + off, n);
    } else {
      std::memset(dst, 0, n);
    }
    addr += n;
    dst += n;
    left -= n;
  }
}

std::uint64_t Mram::release_below(std::uint64_t offset) {
  const std::uint64_t limit = std::min<std::uint64_t>(
      chunks_.size(), offset / kChunkBytes);
  std::uint64_t released = 0;
  for (std::uint64_t i = 0; i < limit; ++i) {
    if (chunks_[i] != nullptr) {
      free_list_.push_back(std::move(chunks_[i]));
      ++released;
    }
  }
  materialised_ -= released;
  return released;
}

void Mram::check_dma(std::uint64_t addr, std::uint64_t bytes) const {
  PIMNW_CHECK_MSG(addr % kDmaAlign == 0,
                  "DMA address " << addr << " not 8-byte aligned");
  PIMNW_CHECK_MSG(bytes % kDmaAlign == 0,
                  "DMA size " << bytes << " not a multiple of 8");
  PIMNW_CHECK_MSG(bytes >= kDmaMinBytes && bytes <= kDmaMaxBytes,
                  "DMA size " << bytes << " outside [8, 2048]");
  PIMNW_CHECK_MSG(addr <= capacity_ && bytes <= capacity_ - addr,
                  "DMA transfer out of bank: addr=" << addr << " size="
                                                    << bytes);
}

}  // namespace pimnw::upmem
