#include "upmem/mram.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace pimnw::upmem {

void Mram::ensure(std::uint64_t end) const {
  if (end > data_.size()) {
    // Grow in 1 MB steps to amortise reallocation without ballooning small
    // simulations.
    const std::uint64_t step = 1ull << 20;
    data_.resize(std::min(capacity_, ((end + step - 1) / step) * step), 0);
  }
}

void Mram::write(std::uint64_t addr, std::span<const std::uint8_t> bytes) {
  PIMNW_CHECK_MSG(addr + bytes.size() <= capacity_,
                  "MRAM write out of bank: addr=" << addr << " size="
                                                  << bytes.size());
  if (bytes.empty()) return;
  ensure(addr + bytes.size());
  std::memcpy(data_.data() + addr, bytes.data(), bytes.size());
}

void Mram::read(std::uint64_t addr, std::span<std::uint8_t> out) const {
  PIMNW_CHECK_MSG(addr + out.size() <= capacity_,
                  "MRAM read out of bank: addr=" << addr << " size="
                                                 << out.size());
  if (out.empty()) return;
  ensure(addr + out.size());
  std::memcpy(out.data(), data_.data() + addr, out.size());
}

void Mram::check_dma(std::uint64_t addr, std::uint64_t bytes) const {
  PIMNW_CHECK_MSG(addr % kDmaAlign == 0,
                  "DMA address " << addr << " not 8-byte aligned");
  PIMNW_CHECK_MSG(bytes % kDmaAlign == 0,
                  "DMA size " << bytes << " not a multiple of 8");
  PIMNW_CHECK_MSG(bytes >= kDmaMinBytes && bytes <= kDmaMaxBytes,
                  "DMA size " << bytes << " outside [8, 2048]");
  PIMNW_CHECK_MSG(addr + bytes <= capacity_,
                  "DMA transfer out of bank: addr=" << addr << " size="
                                                    << bytes);
}

}  // namespace pimnw::upmem
